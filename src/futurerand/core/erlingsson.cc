#include "futurerand/core/erlingsson.h"

#include <cmath>
#include <utility>
#include <vector>

#include "futurerand/common/macros.h"

namespace futurerand::core {

ErlingssonClient::ErlingssonClient(const ProtocolConfig& config, int level,
                                   int64_t retained_change,
                                   rand::BasicRandomizer basic, Rng rng)
    : config_(config),
      level_(level),
      interval_length_(int64_t{1} << level),
      retained_change_(retained_change),
      basic_(basic),
      rng_(rng) {}

Result<ErlingssonClient> ErlingssonClient::Create(const ProtocolConfig& config,
                                                  uint64_t seed) {
  FR_RETURN_NOT_OK(config.Validate());
  Rng rng(seed);
  const int level =
      static_cast<int>(rng.NextInt(static_cast<uint64_t>(config.num_orders())));
  // Retain the r-th change, r uniform in [1..k]. If the user changes fewer
  // than r times, nothing survives — each change is kept with probability
  // exactly 1/k, which the server's factor-k scale inverts unbiasedly.
  const auto retained = static_cast<int64_t>(
      rng.NextInt(static_cast<uint64_t>(config.max_changes))) + 1;
  FR_ASSIGN_OR_RETURN(rand::BasicRandomizer basic,
                      rand::BasicRandomizer::Create(config.epsilon / 2.0));
  return ErlingssonClient(config, level, retained, basic, rng);
}

Result<std::optional<int8_t>> ErlingssonClient::ObserveState(int8_t state) {
  if (state != 0 && state != 1) {
    return Status::InvalidArgument("state must be 0 or 1");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  ++time_;
  if (state != current_state_) {
    ++changes_seen_;
    if (changes_seen_ == retained_change_) {
      // This is the one change that survives sparsification; its derivative
      // value is +1 when 0 -> 1 and -1 when 1 -> 0.
      interval_sparse_sum_ =
          static_cast<int8_t>(state - current_state_);
    }
  }
  current_state_ = state;

  if (time_ % interval_length_ != 0) {
    return std::optional<int8_t>(std::nullopt);
  }
  // The partial sum of the sparsified derivative over the closing interval:
  // +/-1 if the retained change fell inside it, else 0.
  const int8_t sparse_sum = interval_sparse_sum_;
  interval_sparse_sum_ = 0;
  if (sparse_sum == 0) {
    // Zero coordinates map to uniform signs (Property III analogue).
    return std::optional<int8_t>(rng_.NextSign());
  }
  return std::optional<int8_t>(basic_.Apply(sparse_sum, &rng_));
}

Result<std::vector<double>> ErlingssonLevelScales(
    const ProtocolConfig& config) {
  FR_RETURN_NOT_OK(config.Validate());
  const double eps_tilde = config.epsilon / 2.0;
  const double c_gap =
      (std::exp(eps_tilde) - 1.0) / (std::exp(eps_tilde) + 1.0);
  const int orders = config.num_orders();
  // Section 6: the estimator of S_hat(I_{h,j}) is multiplied by an
  // additional factor of k relative to Algorithm 2 line 5.
  const double scale = static_cast<double>(orders) *
                       static_cast<double>(config.max_changes) / c_gap;
  return std::vector<double>(static_cast<size_t>(orders), scale);
}

Result<Server> MakeErlingssonServer(const ProtocolConfig& config) {
  FR_ASSIGN_OR_RETURN(std::vector<double> scales,
                      ErlingssonLevelScales(config));
  return Server::WithScales(config.num_periods, std::move(scales));
}

}  // namespace futurerand::core
