#include "futurerand/core/naive_rr.h"

#include <cmath>

#include "futurerand/common/macros.h"

namespace futurerand::core {

NaiveRRClient::NaiveRRClient(const ProtocolConfig& config,
                             rand::BasicRandomizer basic, Rng rng)
    : config_(config), basic_(basic), rng_(rng) {}

Result<NaiveRRClient> NaiveRRClient::Create(const ProtocolConfig& config,
                                            uint64_t seed) {
  FR_RETURN_NOT_OK(config.Validate());
  // Sequential composition across d releases: eps_0 = eps / d each.
  FR_ASSIGN_OR_RETURN(
      rand::BasicRandomizer basic,
      rand::BasicRandomizer::Create(config.epsilon /
                                    static_cast<double>(config.num_periods)));
  return NaiveRRClient(config, basic, Rng(seed));
}

Result<int8_t> NaiveRRClient::ObserveState(int8_t state) {
  if (state != 0 && state != 1) {
    return Status::InvalidArgument("state must be 0 or 1");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  ++time_;
  const int8_t encoded = state == 1 ? int8_t{1} : int8_t{-1};
  return basic_.Apply(encoded, &rng_);
}

NaiveRRServer::NaiveRRServer(int64_t num_periods, double c_gap)
    : c_gap_(c_gap), report_sums_(static_cast<size_t>(num_periods), 0) {}

Result<NaiveRRServer> NaiveRRServer::Create(const ProtocolConfig& config) {
  FR_RETURN_NOT_OK(config.Validate());
  const double eps0 =
      config.epsilon / static_cast<double>(config.num_periods);
  const double c_gap = (std::exp(eps0) - 1.0) / (std::exp(eps0) + 1.0);
  return NaiveRRServer(config.num_periods, c_gap);
}

Status NaiveRRServer::SubmitReport(int64_t time, int8_t report) {
  if (report != -1 && report != 1) {
    return Status::InvalidArgument("reports must be -1 or +1");
  }
  if (time < 1 || time > static_cast<int64_t>(report_sums_.size())) {
    return Status::OutOfRange("report time outside [1..d]");
  }
  report_sums_[static_cast<size_t>(time - 1)] += report;
  return Status::OK();
}

Status NaiveRRServer::IngestReportSums(std::span<const int64_t> sums_by_time,
                                       int64_t reports_per_period) {
  if (sums_by_time.size() != report_sums_.size()) {
    return Status::InvalidArgument("need one report sum per time period");
  }
  if (reports_per_period < 0) {
    return Status::InvalidArgument("reports_per_period must be >= 0");
  }
  for (const int64_t sum : sums_by_time) {
    // |sum| <= r and sum ≡ r (mod 2) are the only values a sum of r signs
    // can take. Compare without negating `sum` (INT64_MIN has no positive
    // counterpart) and without subtracting (parity needs no difference).
    if (sum > reports_per_period || sum < -reports_per_period ||
        ((sum % 2 != 0) != (reports_per_period % 2 != 0))) {
      return Status::InvalidArgument(
          "sum is not reachable by reports_per_period +/-1 reports");
    }
  }
  for (size_t i = 0; i < report_sums_.size(); ++i) {
    report_sums_[i] += sums_by_time[i];
  }
  num_clients_ += reports_per_period;
  return Status::OK();
}

Result<double> NaiveRRServer::EstimateAt(int64_t t) const {
  if (t < 1 || t > static_cast<int64_t>(report_sums_.size())) {
    return Status::OutOfRange("query time outside [1..d]");
  }
  // E[report] = c_gap * (2 st - 1), so
  // a_hat = (sum / c_gap + n) / 2 is unbiased for sum_u st_u[t].
  const auto sum =
      static_cast<double>(report_sums_[static_cast<size_t>(t - 1)]);
  return (sum / c_gap_ + static_cast<double>(num_clients_)) / 2.0;
}

Status NaiveRRServer::Merge(const NaiveRRServer& other) {
  if (other.report_sums_.size() != report_sums_.size() ||
      other.c_gap_ != c_gap_) {
    return Status::InvalidArgument("cannot merge servers of different shape");
  }
  for (size_t i = 0; i < report_sums_.size(); ++i) {
    report_sums_[i] += other.report_sums_[i];
  }
  num_clients_ += other.num_clients_;
  return Status::OK();
}

Result<std::vector<double>> NaiveRRServer::EstimateAll() const {
  std::vector<double> estimates;
  estimates.reserve(report_sums_.size());
  for (int64_t t = 1; t <= static_cast<int64_t>(report_sums_.size()); ++t) {
    FR_ASSIGN_OR_RETURN(double estimate, EstimateAt(t));
    estimates.push_back(estimate);
  }
  return estimates;
}

}  // namespace futurerand::core
