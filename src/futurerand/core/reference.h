// The non-private reference pipeline: the "naive protocol" of Section 4.1 in
// which every user reports every partial sum exactly. It recovers a[t]
// with zero error and is used to validate the dyadic plumbing end-to-end
// (and as the ground-truth oracle in the simulator).

#ifndef FUTURERAND_CORE_REFERENCE_H_
#define FUTURERAND_CORE_REFERENCE_H_

#include <cstdint>

#include "futurerand/common/result.h"
#include "futurerand/dyadic/tree.h"

namespace futurerand::core {

/// Exact (non-private) aggregator over user derivatives.
class ReferenceAggregator {
 public:
  /// Domain size d must be a power of two.
  static Result<ReferenceAggregator> Create(int64_t num_periods);

  /// Ingests one user's derivative X_u[t] in {-1,0,+1} at time t; internally
  /// adds it to the partial sum of every dyadic interval containing t
  /// (equivalently, the user "reports" each S_u(I_{h,j}) exactly).
  Status ObserveDerivative(int64_t t, int8_t derivative);

  /// The exact count a[t] = sum over C(t) of S(I) (Observation 3.9).
  Result<int64_t> CountAt(int64_t t) const;

  int64_t num_periods() const { return sums_.domain_size(); }

 private:
  explicit ReferenceAggregator(int64_t num_periods);

  dyadic::DyadicTree<int64_t> sums_;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_REFERENCE_H_
