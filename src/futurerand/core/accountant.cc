#include "futurerand/core/accountant.h"

#include "futurerand/common/macros.h"

namespace futurerand::core {

PrivacyAccountant::PrivacyAccountant(double budget) : budget_(budget) {
  FR_CHECK_MSG(budget > 0.0, "privacy budget must be positive");
}

Status PrivacyAccountant::Charge(int64_t user_id, double epsilon) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("charge must be positive");
  }
  // Tolerate float round-off when exactly exhausting the budget (e.g. d
  // charges of eps/d).
  constexpr double kSlack = 1e-9;
  double& spent = spent_[user_id];
  if (spent + epsilon > budget_ * (1.0 + kSlack)) {
    return Status::FailedPrecondition("privacy budget exhausted");
  }
  spent += epsilon;
  return Status::OK();
}

double PrivacyAccountant::Spent(int64_t user_id) const {
  const auto it = spent_.find(user_id);
  return it == spent_.end() ? 0.0 : it->second;
}

double PrivacyAccountant::Remaining(int64_t user_id) const {
  const double remaining = budget_ - Spent(user_id);
  return remaining > 0.0 ? remaining : 0.0;
}

}  // namespace futurerand::core
