#include "futurerand/core/reference.h"

#include "futurerand/common/math.h"

namespace futurerand::core {

ReferenceAggregator::ReferenceAggregator(int64_t num_periods)
    : sums_(num_periods) {}

Result<ReferenceAggregator> ReferenceAggregator::Create(int64_t num_periods) {
  if (num_periods < 1 || !IsPowerOfTwo(static_cast<uint64_t>(num_periods))) {
    return Status::InvalidArgument("num_periods must be a power of two");
  }
  return ReferenceAggregator(num_periods);
}

Status ReferenceAggregator::ObserveDerivative(int64_t t, int8_t derivative) {
  if (t < 1 || t > sums_.domain_size()) {
    return Status::OutOfRange("time outside [1..d]");
  }
  if (derivative != -1 && derivative != 0 && derivative != 1) {
    return Status::InvalidArgument("derivative must be in {-1,0,+1}");
  }
  if (derivative != 0) {
    sums_.AddAtTime(t, static_cast<int64_t>(derivative));
  }
  return Status::OK();
}

Result<int64_t> ReferenceAggregator::CountAt(int64_t t) const {
  if (t < 1 || t > sums_.domain_size()) {
    return Status::OutOfRange("time outside [1..d]");
  }
  return sums_.PrefixSum(t);
}

}  // namespace futurerand::core
