#include "futurerand/core/client.h"

#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/common/random.h"

namespace futurerand::core {

Client::Client(const ProtocolConfig& config, int level,
               std::unique_ptr<rand::SequenceRandomizer> randomizer)
    : config_(config),
      level_(level),
      interval_length_(int64_t{1} << level),
      randomizer_(std::move(randomizer)) {}

Result<Client> Client::Create(const ProtocolConfig& config, uint64_t seed) {
  FR_RETURN_NOT_OK(config.Validate());
  Rng rng(seed);
  // Algorithm 1 line 1: h_u uniform over [0..log d]. Longitudinal clients
  // all sit at level 0 (they report every tick); the level draw is skipped
  // entirely — not drawn-and-discarded — so the randomizer seed stays the
  // FIRST draw, bit-identical with the ClientFleet creation path.
  const int level =
      rand::IsLongitudinalKind(config.randomizer)
          ? 0
          : static_cast<int>(
                rng.NextInt(static_cast<uint64_t>(config.num_orders())));
  const int64_t length = config.num_periods >> level;  // L = d / 2^{h_u}
  // Paper-faithful mode passes the global k (M.init(L, k, eps), Algorithm 1
  // line 3); the per-level extension shrinks it to min(k, L).
  const int64_t support = config.SupportAtLevel(level);
  FR_ASSIGN_OR_RETURN(
      std::unique_ptr<rand::SequenceRandomizer> randomizer,
      rand::MakeSequenceRandomizer(config.randomizer, length, support,
                                   config.epsilon, rng.NextUint64(),
                                   config.longitudinal_alpha));
  return Client(config, level, std::move(randomizer));
}

Result<std::optional<int8_t>> Client::ObserveState(int8_t state) {
  if (state != 0 && state != 1) {
    return Status::InvalidArgument("state must be 0 or 1");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  ++time_;
  if (state != current_state_) {
    ++changes_seen_;
  }
  current_state_ = state;

  // Algorithm 1 line 5: report exactly when 2^{h_u} divides t.
  if (time_ % interval_length_ != 0) {
    return std::optional<int8_t>(std::nullopt);
  }
  // Observation 3.7: the partial sum over the interval ending at t is
  // st_u[t] - st_u[t - 2^{h_u}], both of which the client has retained.
  const auto partial_sum =
      static_cast<int8_t>(current_state_ - boundary_state_);
  boundary_state_ = current_state_;
  ++reports_sent_;
  return std::optional<int8_t>(randomizer_->Randomize(partial_sum));
}

Result<std::optional<int8_t>> Client::ObserveDerivative(int8_t derivative) {
  if (derivative != -1 && derivative != 0 && derivative != 1) {
    return Status::InvalidArgument("derivative must be in {-1,0,+1}");
  }
  const int8_t next_state = static_cast<int8_t>(current_state_ + derivative);
  if (next_state != 0 && next_state != 1) {
    return Status::InvalidArgument(
        "derivative would move the Boolean state outside {0,1}");
  }
  return ObserveState(next_state);
}

}  // namespace futurerand::core
