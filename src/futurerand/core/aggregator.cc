#include "futurerand/core/aggregator.h"

#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/core/snapshot.h"

namespace futurerand::core {

ShardedAggregator::ShardedAggregator(int64_t num_periods,
                                     std::vector<double> level_scales,
                                     DedupPolicy dedup,
                                     DedupWindowPolicy window,
                                     StoreConfig store,
                                     EstimatorSpec estimator,
                                     std::vector<Shard> shards,
                                     Server snapshot)
    : num_periods_(num_periods),
      level_scales_(std::move(level_scales)),
      dedup_policy_(dedup),
      dedup_window_(window),
      store_config_(store.Canonical()),
      estimator_spec_(estimator),
      shards_(std::move(shards)),
      checkpoint_mutex_(std::make_unique<std::mutex>()),
      snapshot_mutex_(std::make_unique<std::mutex>()),
      snapshot_(std::move(snapshot)) {}

Result<ShardedAggregator> ShardedAggregator::ForProtocol(
    const ProtocolConfig& config, int num_shards, DedupPolicy dedup,
    DedupWindowPolicy window) {
  FR_ASSIGN_OR_RETURN(std::vector<double> scales,
                      ProtocolLevelScales(config));
  FR_ASSIGN_OR_RETURN(EstimatorSpec estimator, ProtocolEstimatorSpec(config));
  return WithScales(config.num_periods, std::move(scales), num_shards, dedup,
                    window, config.store, estimator);
}

Result<ShardedAggregator> ShardedAggregator::WithScales(
    int64_t num_periods, std::vector<double> level_scales, int num_shards,
    DedupPolicy dedup, DedupWindowPolicy window, StoreConfig store,
    EstimatorSpec estimator) {
  if (num_shards < 1) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<Shard> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    FR_ASSIGN_OR_RETURN(
        Server server,
        Server::WithScales(num_periods, level_scales, dedup, window, store,
                           estimator));
    shards.push_back(Shard{std::make_unique<std::mutex>(),
                           std::move(server)});
  }
  // The snapshot shares the policy and store so MergeAggregatesOnly stays
  // compatible; it never ingests, so the policy is otherwise inert there.
  FR_ASSIGN_OR_RETURN(
      Server snapshot,
      Server::WithScales(num_periods, level_scales, dedup, window, store,
                         estimator));
  return ShardedAggregator(num_periods, std::move(level_scales), dedup,
                           window, store, estimator, std::move(shards),
                           std::move(snapshot));
}

int ShardedAggregator::ShardIndex(int64_t client_id) const {
  const auto shards = static_cast<int64_t>(shards_.size());
  return static_cast<int>(((client_id % shards) + shards) % shards);
}

void ShardedAggregator::MarkDirty() {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  snapshot_dirty_ = true;
}

template <typename Message, typename Apply>
Status ShardedAggregator::IngestBatch(std::span<const Message> batch,
                                      ThreadPool* pool,
                                      IngestOutcome* outcome,
                                      const Apply& apply) {
  if (outcome != nullptr) {
    *outcome = IngestOutcome{};
  }
  if (batch.empty()) {
    return Status::OK();
  }
  // Group record indices per shard so each shard mutex is taken once per
  // batch; per-shard record order is preserved (the counting sort below is
  // stable), which keeps Server's monotone-report-time validation
  // meaningful. One flat index array + per-shard offsets instead of a
  // vector-of-vectors: a single allocation, written sequentially. With one
  // shard the whole batch already belongs to it, so the sort (and the two
  // extra memory passes it costs on a large batch) is skipped entirely and
  // `apply` sees indices == nullptr, meaning the identity over the batch.
  const size_t num_shards = shards_.size();
  std::vector<size_t> index_by_shard;
  std::vector<size_t> offsets(num_shards + 1, 0);
  if (num_shards == 1) {
    offsets[1] = batch.size();
  } else {
    std::vector<uint32_t> shard_of(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const auto s = static_cast<uint32_t>(ShardIndex(batch[i].client_id));
      shard_of[i] = s;
      ++offsets[s + 1];
    }
    for (size_t s = 0; s < num_shards; ++s) {
      offsets[s + 1] += offsets[s];
    }
    index_by_shard.resize(batch.size());
    std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < batch.size(); ++i) {
      index_by_shard[cursor[shard_of[i]]++] = i;
    }
  }
  std::vector<Status> shard_status(num_shards);
  std::vector<IngestOutcome> shard_outcome(num_shards);
  auto ingest_shard = [&](size_t s) {
    const size_t count = offsets[s + 1] - offsets[s];
    if (count == 0) {
      return;
    }
    const size_t* indices =
        num_shards == 1 ? nullptr : index_by_shard.data() + offsets[s];
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    const int64_t dropped_before = shard.server.duplicates_dropped();
    const int64_t stale_before = shard.server.out_of_window_dropped();
    int64_t accepted = 0;
    {
      Status status = apply(shard.server, indices, count, &accepted);
      if (!status.ok()) {
        shard_status[s] = std::move(status);
      }
    }
    // Dirty for the next delta checkpoint iff anything stuck: every
    // accepted record either mutated server state or moved a drop
    // counter (which snapshots serialize). Rejected records mutate
    // nothing (Server validates before mutating), so an all-rejected
    // batch must not force this shard into every subsequent delta.
    if (accepted > 0) {
      ++shard.version;
    }
    // An accepted record either mutated state or was absorbed (as a
    // retransmission or behind the eviction watermark); the shard's drop
    // counters tell the cases apart.
    const int64_t deduped =
        shard.server.duplicates_dropped() - dropped_before;
    const int64_t out_of_window =
        shard.server.out_of_window_dropped() - stale_before;
    shard_outcome[s] =
        IngestOutcome{accepted - deduped - out_of_window, deduped,
                      out_of_window};
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->ParallelFor(static_cast<int64_t>(shards_.size()),
                      [&](int64_t begin, int64_t end) {
                        for (int64_t s = begin; s < end; ++s) {
                          ingest_shard(static_cast<size_t>(s));
                        }
                      });
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) {
      ingest_shard(s);
    }
  }
  if (outcome != nullptr) {
    for (const IngestOutcome& shard : shard_outcome) {
      outcome->applied += shard.applied;
      outcome->deduped += shard.deduped;
      outcome->out_of_window += shard.out_of_window;
    }
  }
  // Dirty even on error: a prefix of the batch may have been applied.
  MarkDirty();
  for (const Status& status : shard_status) {
    FR_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

Status ShardedAggregator::IngestRegistrations(
    std::span<const RegistrationMessage> batch, ThreadPool* pool,
    IngestOutcome* outcome) {
  return IngestBatch(
      batch, pool, outcome,
      [&batch](Server& server, const size_t* indices, size_t count,
               int64_t* accepted) {
        for (size_t i = 0; i < count; ++i) {
          const RegistrationMessage& message =
              batch[indices == nullptr ? i : indices[i]];
          FR_RETURN_NOT_OK(
              server.RegisterClient(message.client_id, message.level));
          ++*accepted;
        }
        return Status::OK();
      });
}

Status ShardedAggregator::IngestReports(std::span<const ReportMessage> batch,
                                        ThreadPool* pool,
                                        IngestOutcome* outcome) {
  // SubmitReports batches the per-level tree updates within same-time runs,
  // so a shard's dyadic counters are touched once per (level, time) instead
  // of once per record.
  return IngestBatch(batch, pool, outcome,
                     [&batch](Server& server, const size_t* indices,
                              size_t count, int64_t* accepted) {
                       if (indices == nullptr) {
                         return server.SubmitReports(batch.first(count),
                                                     accepted);
                       }
                       return server.SubmitReports(
                           batch, std::span<const size_t>(indices, count),
                           accepted);
                     });
}

Status ShardedAggregator::IngestEncoded(std::string_view bytes,
                                        ThreadPool* pool,
                                        IngestOutcome* outcome) {
  if (outcome != nullptr) {
    *outcome = IngestOutcome{};
  }
  FR_ASSIGN_OR_RETURN(WireBatchKind kind, PeekBatchKind(bytes));
  switch (kind) {
    case WireBatchKind::kRegistration:
    case WireBatchKind::kRegistrationV2: {
      // The v2 decoder verifies the FNV-1a trailer before parsing any
      // record, so a corrupted v2 batch is rejected here atomically with
      // kDataLoss — the NACK a sender retransmits on — and never reaches
      // a shard.
      FR_ASSIGN_OR_RETURN(std::vector<RegistrationMessage> batch,
                          DecodeRegistrationBatch(bytes));
      return IngestRegistrations(batch, pool, outcome);
    }
    case WireBatchKind::kReport:
    case WireBatchKind::kReportV2: {
      FR_ASSIGN_OR_RETURN(std::vector<ReportMessage> batch,
                          DecodeReportBatch(bytes));
      return IngestReports(batch, pool, outcome);
    }
    case WireBatchKind::kServerState:
    case WireBatchKind::kServerStateSketch:
    case WireBatchKind::kAggregatorState:
    case WireBatchKind::kAggregatorDelta:
    case WireBatchKind::kFleetLongState:
      return Status::InvalidArgument(
          "snapshot blob is not an ingestible batch; use Restore");
  }
  return Status::Internal("unreachable wire batch kind");
}

namespace {

// The epoch is a fingerprint of the captured state, not a counter: a
// collector that restores an older full blob and keeps checkpointing can
// never mint an epoch that collides with a *different* base state, so a
// delta can never chain onto the wrong base. (Zero is reserved for "no
// chain anchor".)
uint64_t EpochFingerprint(const std::vector<std::string>& shard_states) {
  std::string digest;
  for (const std::string& state : shard_states) {
    wire_internal::PutFixed64(wire_internal::Fnv1a64(state), &digest);
  }
  const uint64_t epoch = wire_internal::Fnv1a64(digest);
  return epoch == 0 ? 1 : epoch;
}

}  // namespace

Result<std::string> ShardedAggregator::Checkpoint(CheckpointMode mode) {
  const std::lock_guard<std::mutex> checkpoint_lock(*checkpoint_mutex_);
  if (mode == CheckpointMode::kFull) {
    std::vector<std::string> shard_states;
    shard_states.reserve(shards_.size());
    for (Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(*shard.mutex);
      shard_states.push_back(EncodeServerState(shard.server));
      shard.checkpointed_version = shard.version;
    }
    checkpoint_epoch_ = EpochFingerprint(shard_states);
    checkpoint_seq_ = 0;
    return EncodeAggregatorState(shard_states, checkpoint_epoch_);
  }
  if (checkpoint_epoch_ == 0) {
    return Status::FailedPrecondition(
        "delta checkpoint needs a full checkpoint as its base");
  }
  ++checkpoint_seq_;
  AggregatorDeltaBlob delta;
  delta.num_shards = static_cast<int64_t>(shards_.size());
  delta.epoch = checkpoint_epoch_;
  delta.seq = checkpoint_seq_;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    if (shard.version == shard.checkpointed_version) {
      continue;  // untouched since the last checkpoint: not in the delta
    }
    delta.shards.push_back(ShardDelta{static_cast<int64_t>(s),
                                      EncodeServerState(shard.server)});
    shard.checkpointed_version = shard.version;
  }
  return EncodeAggregatorDelta(delta);
}

Result<Server> ShardedAggregator::DecodeAndValidateShard(
    std::string_view state) const {
  FR_ASSIGN_OR_RETURN(Server server, DecodeServerState(state));
  if (server.num_periods() != num_periods_) {
    return Status::InvalidArgument(
        "checkpoint num_periods mismatches aggregator");
  }
  if (server.level_scales() != level_scales_) {
    return Status::InvalidArgument(
        "checkpoint level scales mismatch aggregator");
  }
  if (server.dedup_policy() != dedup_policy_) {
    return Status::InvalidArgument(
        "checkpoint dedup policy mismatches aggregator");
  }
  if (server.dedup_window() != dedup_window_) {
    return Status::InvalidArgument(
        "checkpoint dedup window mismatches aggregator");
  }
  if (server.store_config() != store_config_) {
    return Status::InvalidArgument(
        "checkpoint store config mismatches aggregator");
  }
  if (server.estimator() != estimator_spec_) {
    return Status::InvalidArgument(
        "checkpoint estimator spec mismatches aggregator");
  }
  return server;
}

Status ShardedAggregator::Restore(std::string_view bytes) {
  FR_ASSIGN_OR_RETURN(const WireBatchKind kind, PeekBatchKind(bytes));
  switch (kind) {
    case WireBatchKind::kAggregatorState:
      return RestoreFull(bytes);
    case WireBatchKind::kAggregatorDelta:
      return RestoreDelta(bytes);
    default:
      return Status::InvalidArgument(
          "not an aggregator checkpoint blob; cannot restore");
  }
}

Status ShardedAggregator::RestoreFull(std::string_view bytes) {
  FR_ASSIGN_OR_RETURN(AggregatorStateBlob blob,
                      DecodeAggregatorState(bytes));
  // A chain-anchoring epoch must be the fingerprint of the state it
  // anchors: Checkpoint() always stamps it that way, so a mismatch means
  // a tool minted the blob through EncodeAggregatorState with a guessed
  // epoch. Adopting it verbatim could let a delta from a *different* base
  // chain onto this state, so refuse instead (pass epoch 0 — "no chain
  // anchor" — when exporting state no delta will extend).
  if (blob.epoch != 0 && blob.epoch != EpochFingerprint(blob.shards)) {
    return Status::InvalidArgument(
        "full checkpoint epoch does not fingerprint its own shard state; "
        "encode with epoch 0 unless the blob came from Checkpoint()");
  }
  // Decode and validate everything before touching any shard: Restore
  // either replaces the whole aggregator or leaves it unchanged.
  std::vector<Server> servers;
  servers.reserve(blob.shards.size());
  for (const std::string& state : blob.shards) {
    FR_ASSIGN_OR_RETURN(Server server, DecodeAndValidateShard(state));
    servers.push_back(std::move(server));
  }
  const bool resharded = servers.size() != shards_.size();
  if (resharded) {
    // Elastic resharding: re-bucket every client onto this aggregator's
    // id-mod-M layout. Estimates are bit-identical (queries sum shards).
    FR_ASSIGN_OR_RETURN(
        servers, ReshardServerStates(std::move(servers), num_shards()));
  }
  const std::lock_guard<std::mutex> checkpoint_lock(*checkpoint_mutex_);
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    shard.server = std::move(servers[s]);
    ++shard.version;
    // A same-layout restore leaves each shard exactly as the blob captured
    // it, so the chain may continue with deltas; a resharded restore broke
    // the blob's shard layout, so the chain restarts at the next kFull.
    shard.checkpointed_version = resharded ? shard.version - 1
                                           : shard.version;
  }
  checkpoint_epoch_ = resharded ? 0 : blob.epoch;
  checkpoint_seq_ = 0;
  MarkDirty();
  return Status::OK();
}

Status ShardedAggregator::RestoreDelta(std::string_view bytes) {
  FR_ASSIGN_OR_RETURN(AggregatorDeltaBlob delta,
                      DecodeAggregatorDelta(bytes));
  if (delta.num_shards != static_cast<int64_t>(shards_.size())) {
    return Status::InvalidArgument(
        "delta checkpoint cannot change the shard count; restore a full "
        "checkpoint instead");
  }
  std::vector<Server> servers;
  servers.reserve(delta.shards.size());
  for (const ShardDelta& entry : delta.shards) {
    FR_ASSIGN_OR_RETURN(Server server, DecodeAndValidateShard(entry.state));
    servers.push_back(std::move(server));
  }
  const std::lock_guard<std::mutex> checkpoint_lock(*checkpoint_mutex_);
  if (delta.epoch != checkpoint_epoch_ ||
      delta.seq != checkpoint_seq_ + 1) {
    return Status::FailedPrecondition(
        "delta checkpoint does not extend this aggregator's chain "
        "position; restore its base full checkpoint and every prior delta "
        "in order first");
  }
  // The chain position alone is not enough: ingestion does not move it,
  // so an aggregator that ingested since its last checkpoint/restore has
  // diverged from the state the delta extends — applying it would mix
  // the two timelines shard by shard. Every shard must be clean.
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    if (shard.version != shard.checkpointed_version) {
      return Status::FailedPrecondition(
          "aggregator ingested since its checkpoint chain position; "
          "restore the base full checkpoint (and prior deltas) first");
    }
  }
  for (size_t e = 0; e < delta.shards.size(); ++e) {
    Shard& shard =
        shards_[static_cast<size_t>(delta.shards[e].shard_index)];
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    shard.server = std::move(servers[e]);
    ++shard.version;
    shard.checkpointed_version = shard.version;
  }
  checkpoint_seq_ = delta.seq;
  MarkDirty();
  return Status::OK();
}

Status ShardedAggregator::RefreshSnapshotLocked() const {
  if (!snapshot_dirty_) {
    return Status::OK();
  }
  FR_ASSIGN_OR_RETURN(Server fresh,
                      Server::WithScales(num_periods_, level_scales_,
                                         dedup_policy_, dedup_window_,
                                         store_config_, estimator_spec_));
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    // Aggregates only: the snapshot never ingests reports itself, and
    // re-registering every client per refresh would make each
    // query-after-ingest O(population) instead of O(d log d).
    FR_RETURN_NOT_OK(fresh.MergeAggregatesOnly(shard.server));
  }
  snapshot_ = std::move(fresh);
  snapshot_dirty_ = false;
  return Status::OK();
}

Result<double> ShardedAggregator::EstimateAt(int64_t t) const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateAt(t);
}

Result<std::vector<double>> ShardedAggregator::EstimateAll() const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateAll();
}

Result<std::vector<double>> ShardedAggregator::EstimateAllConsistent() const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateAllConsistent();
}

Result<double> ShardedAggregator::EstimateWindowDelta(int64_t l,
                                                      int64_t r) const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateWindowDelta(l, r);
}

int64_t ShardedAggregator::num_clients() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    total += shard.server.num_clients();
  }
  return total;
}

int64_t ShardedAggregator::duplicates_dropped() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    total += shard.server.duplicates_dropped();
  }
  return total;
}

int64_t ShardedAggregator::out_of_window_dropped() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    total += shard.server.out_of_window_dropped();
  }
  return total;
}

int64_t ShardedAggregator::ApproxMemoryBytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    total += shard.server.ApproxMemoryBytes();
  }
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  return total + snapshot_.ApproxMemoryBytes();
}

}  // namespace futurerand::core
