#include "futurerand/core/aggregator.h"

#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/core/snapshot.h"

namespace futurerand::core {

ShardedAggregator::ShardedAggregator(int64_t num_periods,
                                     std::vector<double> level_scales,
                                     DedupPolicy dedup,
                                     std::vector<Shard> shards,
                                     Server snapshot)
    : num_periods_(num_periods),
      level_scales_(std::move(level_scales)),
      dedup_policy_(dedup),
      shards_(std::move(shards)),
      snapshot_mutex_(std::make_unique<std::mutex>()),
      snapshot_(std::move(snapshot)) {}

Result<ShardedAggregator> ShardedAggregator::ForProtocol(
    const ProtocolConfig& config, int num_shards, DedupPolicy dedup) {
  FR_ASSIGN_OR_RETURN(std::vector<double> scales,
                      ProtocolLevelScales(config));
  return WithScales(config.num_periods, std::move(scales), num_shards, dedup);
}

Result<ShardedAggregator> ShardedAggregator::WithScales(
    int64_t num_periods, std::vector<double> level_scales, int num_shards,
    DedupPolicy dedup) {
  if (num_shards < 1) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::vector<Shard> shards;
  shards.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    FR_ASSIGN_OR_RETURN(Server server,
                        Server::WithScales(num_periods, level_scales, dedup));
    shards.push_back(Shard{std::make_unique<std::mutex>(),
                           std::move(server)});
  }
  // The snapshot shares the policy so MergeAggregatesOnly stays compatible;
  // it never ingests, so the policy is otherwise inert there.
  FR_ASSIGN_OR_RETURN(Server snapshot,
                      Server::WithScales(num_periods, level_scales, dedup));
  return ShardedAggregator(num_periods, std::move(level_scales), dedup,
                           std::move(shards), std::move(snapshot));
}

int ShardedAggregator::ShardIndex(int64_t client_id) const {
  const auto shards = static_cast<int64_t>(shards_.size());
  return static_cast<int>(((client_id % shards) + shards) % shards);
}

void ShardedAggregator::MarkDirty() {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  snapshot_dirty_ = true;
}

template <typename Message, typename Apply>
Status ShardedAggregator::IngestBatch(std::span<const Message> batch,
                                      ThreadPool* pool,
                                      IngestOutcome* outcome,
                                      const Apply& apply) {
  if (outcome != nullptr) {
    *outcome = IngestOutcome{};
  }
  if (batch.empty()) {
    return Status::OK();
  }
  // Group record indices per shard so each shard mutex is taken once per
  // batch; per-shard record order is preserved, which keeps Server's
  // monotone-report-time validation meaningful.
  std::vector<std::vector<size_t>> buckets(shards_.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    buckets[static_cast<size_t>(ShardIndex(batch[i].client_id))].push_back(i);
  }
  std::vector<Status> shard_status(shards_.size());
  std::vector<IngestOutcome> shard_outcome(shards_.size());
  auto ingest_shard = [&](size_t s) {
    if (buckets[s].empty()) {
      return;
    }
    Shard& shard = shards_[s];
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    const int64_t dropped_before = shard.server.duplicates_dropped();
    int64_t accepted = 0;
    for (const size_t i : buckets[s]) {
      Status status = apply(shard.server, batch[i]);
      if (!status.ok()) {
        shard_status[s] = std::move(status);
        break;
      }
      ++accepted;
    }
    // An accepted record either mutated state or was absorbed as a
    // retransmission; the shard's duplicate counter tells them apart.
    const int64_t deduped =
        shard.server.duplicates_dropped() - dropped_before;
    shard_outcome[s] = IngestOutcome{accepted - deduped, deduped};
  };
  if (pool != nullptr && shards_.size() > 1) {
    pool->ParallelFor(static_cast<int64_t>(shards_.size()),
                      [&](int64_t begin, int64_t end) {
                        for (int64_t s = begin; s < end; ++s) {
                          ingest_shard(static_cast<size_t>(s));
                        }
                      });
  } else {
    for (size_t s = 0; s < shards_.size(); ++s) {
      ingest_shard(s);
    }
  }
  if (outcome != nullptr) {
    for (const IngestOutcome& shard : shard_outcome) {
      outcome->applied += shard.applied;
      outcome->deduped += shard.deduped;
    }
  }
  // Dirty even on error: a prefix of the batch may have been applied.
  MarkDirty();
  for (const Status& status : shard_status) {
    FR_RETURN_NOT_OK(status);
  }
  return Status::OK();
}

Status ShardedAggregator::IngestRegistrations(
    std::span<const RegistrationMessage> batch, ThreadPool* pool,
    IngestOutcome* outcome) {
  return IngestBatch(batch, pool, outcome,
                     [](Server& server, const RegistrationMessage& message) {
                       return server.RegisterClient(message.client_id,
                                                    message.level);
                     });
}

Status ShardedAggregator::IngestReports(std::span<const ReportMessage> batch,
                                        ThreadPool* pool,
                                        IngestOutcome* outcome) {
  return IngestBatch(batch, pool, outcome,
                     [](Server& server, const ReportMessage& message) {
                       return server.SubmitReport(
                           message.client_id, message.time, message.value);
                     });
}

Status ShardedAggregator::IngestEncoded(std::string_view bytes,
                                        ThreadPool* pool,
                                        IngestOutcome* outcome) {
  if (outcome != nullptr) {
    *outcome = IngestOutcome{};
  }
  FR_ASSIGN_OR_RETURN(WireBatchKind kind, PeekBatchKind(bytes));
  switch (kind) {
    case WireBatchKind::kRegistration: {
      FR_ASSIGN_OR_RETURN(std::vector<RegistrationMessage> batch,
                          DecodeRegistrationBatch(bytes));
      return IngestRegistrations(batch, pool, outcome);
    }
    case WireBatchKind::kReport: {
      FR_ASSIGN_OR_RETURN(std::vector<ReportMessage> batch,
                          DecodeReportBatch(bytes));
      return IngestReports(batch, pool, outcome);
    }
    case WireBatchKind::kServerState:
    case WireBatchKind::kAggregatorState:
      return Status::InvalidArgument(
          "snapshot blob is not an ingestible batch; use Restore");
  }
  return Status::Internal("unreachable wire batch kind");
}

Result<std::string> ShardedAggregator::Checkpoint() const {
  std::vector<std::string> shard_states;
  shard_states.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    shard_states.push_back(EncodeServerState(shard.server));
  }
  return EncodeAggregatorState(shard_states);
}

Status ShardedAggregator::Restore(std::string_view bytes) {
  FR_ASSIGN_OR_RETURN(const std::vector<std::string> shard_states,
                      DecodeAggregatorState(bytes));
  if (shard_states.size() != shards_.size()) {
    return Status::InvalidArgument(
        "checkpoint shard count mismatches aggregator");
  }
  // Decode and validate everything before touching any shard: Restore
  // either replaces the whole aggregator or leaves it unchanged.
  std::vector<Server> servers;
  servers.reserve(shard_states.size());
  for (const std::string& state : shard_states) {
    FR_ASSIGN_OR_RETURN(Server server, DecodeServerState(state));
    if (server.num_periods() != num_periods_) {
      return Status::InvalidArgument(
          "checkpoint num_periods mismatches aggregator");
    }
    if (server.level_scales() != level_scales_) {
      return Status::InvalidArgument(
          "checkpoint level scales mismatch aggregator");
    }
    if (server.dedup_policy() != dedup_policy_) {
      return Status::InvalidArgument(
          "checkpoint dedup policy mismatches aggregator");
    }
    servers.push_back(std::move(server));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    const std::lock_guard<std::mutex> lock(*shards_[s].mutex);
    shards_[s].server = std::move(servers[s]);
  }
  MarkDirty();
  return Status::OK();
}

Status ShardedAggregator::RefreshSnapshotLocked() const {
  if (!snapshot_dirty_) {
    return Status::OK();
  }
  FR_ASSIGN_OR_RETURN(
      Server fresh,
      Server::WithScales(num_periods_, level_scales_, dedup_policy_));
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    // Aggregates only: the snapshot never ingests reports itself, and
    // re-registering every client per refresh would make each
    // query-after-ingest O(population) instead of O(d log d).
    FR_RETURN_NOT_OK(fresh.MergeAggregatesOnly(shard.server));
  }
  snapshot_ = std::move(fresh);
  snapshot_dirty_ = false;
  return Status::OK();
}

Result<double> ShardedAggregator::EstimateAt(int64_t t) const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateAt(t);
}

Result<std::vector<double>> ShardedAggregator::EstimateAll() const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateAll();
}

Result<std::vector<double>> ShardedAggregator::EstimateAllConsistent() const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateAllConsistent();
}

Result<double> ShardedAggregator::EstimateWindowDelta(int64_t l,
                                                      int64_t r) const {
  const std::lock_guard<std::mutex> lock(*snapshot_mutex_);
  FR_RETURN_NOT_OK(RefreshSnapshotLocked());
  return snapshot_.EstimateWindowDelta(l, r);
}

int64_t ShardedAggregator::num_clients() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    total += shard.server.num_clients();
  }
  return total;
}

int64_t ShardedAggregator::duplicates_dropped() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(*shard.mutex);
    total += shard.server.duplicates_dropped();
  }
  return total;
}

}  // namespace futurerand::core
