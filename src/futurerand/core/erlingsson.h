// The Erlingsson et al. (2020) online baseline, as described in Section 6
// ("Online Setting") in this paper's notation and framework.
//
// Differences from Algorithm 1:
//   * an extra sampling step keeps at most ONE of the user's (up to k)
//     changes: the client draws r uniform in [1..k] and retains only its
//     r-th change, zeroing the rest of the derivative. Retaining each change
//     with probability exactly 1/k keeps the estimator unbiased even when
//     the user changes fewer than k times;
//   * each partial sum of the sparsified derivative is perturbed by the
//     basic randomizer R with eps~ = eps/2 (zero sums map to uniform signs),
//     giving c_gap = (e^{eps/2}-1)/(e^{eps/2}+1) in Omega(eps);
//   * the server estimator carries an additional factor k to undo the
//     change sampling, which is where the linear-in-k error comes from.

#ifndef FUTURERAND_CORE_ERLINGSSON_H_
#define FUTURERAND_CORE_ERLINGSSON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "futurerand/common/random.h"
#include "futurerand/common/result.h"
#include "futurerand/core/config.h"
#include "futurerand/core/server.h"
#include "futurerand/randomizer/basic.h"

namespace futurerand::core {

/// Client of the Erlingsson et al. baseline. Move-only; not thread-safe.
class ErlingssonClient {
 public:
  /// Samples the level h_u and the retained-change index. The
  /// config.randomizer field is ignored (the construction fixes R(eps/2)).
  static Result<ErlingssonClient> Create(const ProtocolConfig& config,
                                         uint64_t seed);

  ErlingssonClient(ErlingssonClient&&) = default;
  ErlingssonClient& operator=(ErlingssonClient&&) = default;
  ErlingssonClient(const ErlingssonClient&) = delete;
  ErlingssonClient& operator=(const ErlingssonClient&) = delete;

  /// The sampled order h_u (data-independent, sent in the clear).
  int level() const { return level_; }

  /// Ingests st_u[t] for the next period; returns the perturbed report when
  /// 2^{h_u} divides t.
  Result<std::optional<int8_t>> ObserveState(int8_t state);

  int64_t current_time() const { return time_; }

  /// The gap of the fixed basic randomizer R(eps/2).
  double c_gap() const { return basic_.c_gap(); }

 private:
  ErlingssonClient(const ProtocolConfig& config, int level,
                   int64_t retained_change, rand::BasicRandomizer basic,
                   Rng rng);

  ProtocolConfig config_;
  int level_;
  int64_t interval_length_;
  int64_t retained_change_;  // r in [1..k]: which change (if any) survives
  rand::BasicRandomizer basic_;
  Rng rng_;

  int64_t time_ = 0;
  int8_t current_state_ = 0;
  int64_t changes_seen_ = 0;
  // The sparsified derivative's cumulative value within the current dyadic
  // interval: +/-1 if the retained change happened in this interval.
  int8_t interval_sparse_sum_ = 0;
};

/// The per-level debiasing scales of the matching server:
/// (1 + log d) * k / c_gap at every level. Exposed so batch aggregation can
/// build sharded servers (ShardedAggregator::WithScales) for this baseline.
Result<std::vector<double>> ErlingssonLevelScales(
    const ProtocolConfig& config);

/// The matching server: Algorithm 2 with per-report scale
/// (1 + log d) * k / c_gap.
Result<Server> MakeErlingssonServer(const ProtocolConfig& config);

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_ERLINGSSON_H_
