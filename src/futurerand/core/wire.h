// Wire format for client -> server transport.
//
// A deployment ships registrations (client id, level) once and then one-bit
// reports at dyadic boundaries. This module defines a compact, versioned,
// validated binary encoding for batches of both message types:
//
//   [magic 'F','R','W'][version 1][kind][varint count][records...]
//
// Records are delta-encoded: client ids and times are sorted-friendly
// (consecutive ids/time steps cost one byte each), values pack into the
// time varint's low bit. Decoding rejects wrong magic/version/kind,
// truncated input, overlong varints and trailing bytes — malformed network
// input must never reach the aggregation logic.
//
// The same [magic][version][kind] header scheme frames the checkpoint
// blobs of core/snapshot.h (kinds kServerState / kAggregatorState /
// kAggregatorDelta), which additionally carry an FNV-1a trailer so bit rot
// in persisted state is always rejected rather than silently restored.
//
// docs/FORMATS.md is the normative byte-layout specification for every
// kind; scripts/check_format_spec.sh keeps the constants below and that
// table in lockstep.

#ifndef FUTURERAND_CORE_WIRE_H_
#define FUTURERAND_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"

namespace futurerand::core {

/// One client registration (sent once, before any report).
struct RegistrationMessage {
  int64_t client_id = 0;
  int level = 0;

  friend bool operator==(const RegistrationMessage&,
                         const RegistrationMessage&) = default;
};

/// One perturbed report: the bit a client emitted at a dyadic boundary.
struct ReportMessage {
  int64_t client_id = 0;
  int64_t time = 0;     // 1-based period, a multiple of 2^level
  int8_t value = 1;     // -1 or +1

  friend bool operator==(const ReportMessage&, const ReportMessage&) = default;
};

/// The payloads the wire format carries. Registration and report batches
/// are the transport messages; server and aggregator state are the
/// checkpoint blobs of core/snapshot.h, sharing the same header scheme so
/// one peek routes any FutureRand byte stream.
enum class WireBatchKind {
  kRegistration,
  kReport,
  kServerState,      // one Server's accumulators (core/snapshot.h)
  kAggregatorState,  // all ShardedAggregator shards (core/snapshot.h)
  kAggregatorDelta,  // only the shards dirtied since the last checkpoint
};

/// Validates the fixed header of an encoded batch and returns its kind
/// without decoding any records. Lets an ingestion service route raw bytes
/// (e.g. ShardedAggregator::IngestEncoded) with a single decode pass.
Result<WireBatchKind> PeekBatchKind(std::string_view bytes);

/// Serializes a registration batch. Any ordering is accepted; batches
/// sorted by client id encode smallest.
std::string EncodeRegistrationBatch(
    const std::vector<RegistrationMessage>& batch);

/// Parses a registration batch; rejects malformed input.
Result<std::vector<RegistrationMessage>> DecodeRegistrationBatch(
    std::string_view bytes);

/// Serializes a report batch. Values must be -1 or +1 (checked).
Result<std::string> EncodeReportBatch(
    const std::vector<ReportMessage>& batch);

/// Parses a report batch; rejects malformed input.
Result<std::vector<ReportMessage>> DecodeReportBatch(std::string_view bytes);

namespace wire_internal {

/// The raw kind bytes of the FRW header, one per WireBatchKind. The
/// assignments are normative (docs/FORMATS.md) — never renumber, only
/// append.
inline constexpr char kKindRegistration = 1;
inline constexpr char kKindReport = 2;
inline constexpr char kKindServerState = 3;
inline constexpr char kKindAggregatorState = 4;
inline constexpr char kKindAggregatorDelta = 5;

/// Bytes of the fixed header: magic 'F','R','W', version, kind.
inline constexpr size_t kHeaderSize = 5;

/// Appends the fixed header (magic, version, `kind`).
void AppendHeader(char kind, std::string* out);

/// Validates magic and version and returns the raw kind byte without
/// consuming anything.
Result<char> CheckHeader(std::string_view bytes);

/// Validates the header against `expected_kind` and strips it from `bytes`.
Status ConsumeHeader(char expected_kind, std::string_view* bytes);

/// Appends `value` as 8 little-endian bytes (checksums, double bits).
void PutFixed64(uint64_t value, std::string* out);

/// Reads 8 little-endian bytes from the front of `bytes`, advancing it.
Result<uint64_t> GetFixed64(std::string_view* bytes);

/// Appends an unsigned LEB128 varint.
void PutVarint64(uint64_t value, std::string* out);

/// Reads a varint from the front of `bytes`, advancing it. Fails on
/// truncation or encodings longer than 10 bytes.
Result<uint64_t> GetVarint64(std::string_view* bytes);

/// ZigZag transforms for signed deltas.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

/// FNV-1a 64-bit hash, the integrity checksum of the snapshot blobs.
uint64_t Fnv1a64(std::string_view bytes);

/// Appends Fnv1a64 of everything currently in `*out` as 8 little-endian
/// bytes. Decoders strip and verify with ConsumeChecksum.
void AppendChecksum(std::string* out);

/// Verifies that `*bytes` ends with the Fnv1a64 checksum of its preceding
/// bytes; on success trims the 8 checksum bytes off the view. Call with the
/// whole blob before decoding any payload.
Status ConsumeChecksum(std::string_view* bytes);

}  // namespace wire_internal
}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_WIRE_H_
