// Wire format for client -> server transport.
//
// A deployment ships registrations (client id, level) once and then one-bit
// reports at dyadic boundaries. This module defines a compact, versioned,
// validated binary encoding for batches of both message types:
//
//   [magic 'F','R','W'][version][kind][varint count][records...]
//
// Two container versions coexist on the wire:
//
//   v1 (kinds 1-2)  the original transport batches: no integrity trailer.
//                   A bit flip that still decodes injects plausible records
//                   silently; only decode failures are detectable.
//   v2 (kinds 6-7)  the same record payload followed by an FNV-1a 64
//                   trailer over every preceding byte (the snapshot
//                   convention), so a receiver *detects* in-flight
//                   corruption — every single-bit flip is rejected with
//                   StatusCode::kDataLoss and the sender can retransmit
//                   (NACK-style) instead of trusting an oracle.
//
// Records are delta-encoded: client ids and times are sorted-friendly
// (consecutive ids/time steps cost one byte each), values pack into the
// time varint's low bit. Decoding rejects wrong magic, a version/kind pair
// the table below does not define, truncated input, overlong varints and
// trailing bytes — malformed network input must never reach the
// aggregation logic. Header-level failures (bad magic, unknown version or
// kind) and checksum mismatches return kDataLoss: at an ingest boundary
// they mean "garbled in flight", and the retry loop keys off that code.
//
// The same [magic][version][kind] header scheme frames the checkpoint
// blobs of core/snapshot.h (kinds kServerState / kAggregatorState /
// kAggregatorDelta), which carry the same FNV-1a trailer so bit rot in
// persisted state is always rejected rather than silently restored.
//
// Thread-safety: all functions here are pure (no shared state); encoding
// and decoding may run concurrently from any number of threads.
//
// docs/FORMATS.md is the normative byte-layout specification for every
// kind; scripts/check_format_spec.sh keeps the constants below and that
// table in lockstep.

#ifndef FUTURERAND_CORE_WIRE_H_
#define FUTURERAND_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"

namespace futurerand::core {

/// One client registration (sent once, before any report).
struct RegistrationMessage {
  int64_t client_id = 0;
  int level = 0;

  friend bool operator==(const RegistrationMessage&,
                         const RegistrationMessage&) = default;
};

/// One perturbed report: the bit a client emitted at a dyadic boundary.
struct ReportMessage {
  int64_t client_id = 0;
  int64_t time = 0;     // 1-based period, a multiple of 2^level
  int8_t value = 1;     // -1 or +1
  friend bool operator==(const ReportMessage&, const ReportMessage&) = default;
};

/// The container version a batch is encoded with. Decoders accept both
/// transparently (mixed fleets); encoders pick one:
///   kV1 — compact, no integrity trailer (legacy senders).
///   kV2 — +8 bytes per batch for an FNV-1a trailer; receivers detect
///         every in-flight bit flip (kDataLoss) instead of ingesting
///         poison records or relying on the simulator's oracle.
enum class WireVersion { kV1 = 1, kV2 = 2 };

/// The payloads the wire format carries. Registration and report batches
/// are the transport messages (v1 unchecksummed, v2 checksummed); server
/// and aggregator state are the checkpoint blobs of core/snapshot.h,
/// sharing the same header scheme so one peek routes any FutureRand byte
/// stream.
enum class WireBatchKind {
  kRegistration,       // v1 transport, no checksum
  kReport,             // v1 transport, no checksum
  kServerState,        // one dense-store Server (core/snapshot.h)
  kAggregatorState,    // all ShardedAggregator shards (core/snapshot.h)
  kAggregatorDelta,    // only the shards dirtied since the last checkpoint
  kRegistrationV2,     // v2 transport, FNV-1a trailer
  kReportV2,           // v2 transport, FNV-1a trailer
  kServerStateSketch,  // one sketch-store Server (core/snapshot.h)
  kFleetLongState,     // ClientFleet longitudinal memo state (core/fleet.h)
};

/// Validates the fixed header of an encoded batch and returns its kind
/// without decoding any records. Lets an ingestion service route raw bytes
/// (e.g. ShardedAggregator::IngestEncoded) with a single decode pass.
/// Fails with kDataLoss on bad magic or a version/kind pair the format
/// does not define (an in-flight header flip), kInvalidArgument on input
/// shorter than a header.
Result<WireBatchKind> PeekBatchKind(std::string_view bytes);

/// Serializes a registration batch. Any ordering is accepted; batches
/// sorted by client id encode smallest. kV2 appends the FNV-1a trailer.
std::string EncodeRegistrationBatch(
    const std::vector<RegistrationMessage>& batch,
    WireVersion version = WireVersion::kV1);

/// Parses a registration batch, v1 or v2 (detected from the header);
/// rejects malformed input. For v2 the trailer is verified before any
/// record is decoded, so a corrupted batch fails atomically with
/// kDataLoss — no prefix of it is ever visible to the caller.
Result<std::vector<RegistrationMessage>> DecodeRegistrationBatch(
    std::string_view bytes);

/// Serializes a report batch. Values must be -1 or +1 (checked). kV2
/// appends the FNV-1a trailer.
Result<std::string> EncodeReportBatch(
    const std::vector<ReportMessage>& batch,
    WireVersion version = WireVersion::kV1);

/// Parses a report batch, v1 or v2 (detected from the header); rejects
/// malformed input. Same v2 atomicity and kDataLoss contract as
/// DecodeRegistrationBatch.
Result<std::vector<ReportMessage>> DecodeReportBatch(std::string_view bytes);

namespace wire_internal {

/// The raw kind bytes of the FRW header, one per WireBatchKind, each
/// annotated with the container version that frames it. The assignments
/// are normative (docs/FORMATS.md) — never renumber, only append.
inline constexpr char kKindRegistration = 1;      // FRW v1
inline constexpr char kKindReport = 2;            // FRW v1
inline constexpr char kKindServerState = 3;       // FRW v1
inline constexpr char kKindAggregatorState = 4;   // FRW v1
inline constexpr char kKindAggregatorDelta = 5;   // FRW v1
inline constexpr char kKindRegistrationV2 = 6;    // FRW v2
inline constexpr char kKindReportV2 = 7;          // FRW v2
inline constexpr char kKindServerStateSketch = 8; // FRW v1
inline constexpr char kKindFleetLongState = 9;    // FRW v1

/// The container version bytes (docs/FORMATS.md §1). Each kind is framed
/// by exactly one version; KindWireVersion is the mapping.
inline constexpr char kWireVersion1 = 1;
inline constexpr char kWireVersion2 = 2;

/// The version byte that frames `kind` (every kind belongs to exactly one
/// container version). Kinds are append-only, so the mapping is explicit:
/// only the v2 transport batches are framed by version 2 — later kinds
/// (the sketch snapshot) went back to the v1 container.
constexpr char KindWireVersion(char kind) {
  return kind == kKindRegistrationV2 || kind == kKindReportV2
             ? kWireVersion2
             : kWireVersion1;
}

/// Bytes of the fixed header: magic 'F','R','W', version, kind.
inline constexpr size_t kHeaderSize = 5;

/// Appends the fixed header (magic, KindWireVersion(kind), `kind`).
void AppendHeader(char kind, std::string* out);

/// Validates magic and the version/kind pairing and returns the raw kind
/// byte without consuming anything. Bad magic or an undefined
/// version/kind pair fails with kDataLoss (corruption at an ingest
/// boundary); truncation below kHeaderSize with kInvalidArgument.
Result<char> CheckHeader(std::string_view bytes);

/// Validates the header against `expected_kind` and strips it from `bytes`.
Status ConsumeHeader(char expected_kind, std::string_view* bytes);

/// Appends `value` as 8 little-endian bytes (checksums, double bits).
void PutFixed64(uint64_t value, std::string* out);

/// Reads 8 little-endian bytes from the front of `bytes`, advancing it.
Result<uint64_t> GetFixed64(std::string_view* bytes);

/// Appends an unsigned LEB128 varint.
void PutVarint64(uint64_t value, std::string* out);

/// Reads a varint from the front of `bytes`, advancing it. Fails on
/// truncation or encodings longer than 10 bytes.
Result<uint64_t> GetVarint64(std::string_view* bytes);

/// ZigZag transforms for signed deltas.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

/// FNV-1a 64-bit hash, the integrity checksum of the snapshot blobs and
/// the v2 transport batches.
uint64_t Fnv1a64(std::string_view bytes);

/// Appends Fnv1a64 of everything currently in `*out` as 8 little-endian
/// bytes. Decoders strip and verify with ConsumeChecksum.
void AppendChecksum(std::string* out);

/// Verifies that `*bytes` ends with the Fnv1a64 checksum of its preceding
/// bytes; on success trims the 8 checksum bytes off the view. Call with
/// the whole blob before decoding any payload. A mismatch fails with
/// kDataLoss — the caller-facing "retransmit me" verdict.
Status ConsumeChecksum(std::string_view* bytes);

}  // namespace wire_internal
}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_WIRE_H_
