// Wire format for client -> server transport.
//
// A deployment ships registrations (client id, level) once and then one-bit
// reports at dyadic boundaries. This module defines a compact, versioned,
// validated binary encoding for batches of both message types:
//
//   [magic 'F','R','W'][version 1][kind][varint count][records...]
//
// Records are delta-encoded: client ids and times are sorted-friendly
// (consecutive ids/time steps cost one byte each), values pack into the
// time varint's low bit. Decoding rejects wrong magic/version/kind,
// truncated input, overlong varints and trailing bytes — malformed network
// input must never reach the aggregation logic.

#ifndef FUTURERAND_CORE_WIRE_H_
#define FUTURERAND_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"

namespace futurerand::core {

/// One client registration (sent once, before any report).
struct RegistrationMessage {
  int64_t client_id = 0;
  int level = 0;

  friend bool operator==(const RegistrationMessage&,
                         const RegistrationMessage&) = default;
};

/// One perturbed report: the bit a client emitted at a dyadic boundary.
struct ReportMessage {
  int64_t client_id = 0;
  int64_t time = 0;     // 1-based period, a multiple of 2^level
  int8_t value = 1;     // -1 or +1

  friend bool operator==(const ReportMessage&, const ReportMessage&) = default;
};

/// The two batch payloads the wire format carries.
enum class WireBatchKind {
  kRegistration,
  kReport,
};

/// Validates the fixed header of an encoded batch and returns its kind
/// without decoding any records. Lets an ingestion service route raw bytes
/// (e.g. ShardedAggregator::IngestEncoded) with a single decode pass.
Result<WireBatchKind> PeekBatchKind(std::string_view bytes);

/// Serializes a registration batch. Any ordering is accepted; batches
/// sorted by client id encode smallest.
std::string EncodeRegistrationBatch(
    const std::vector<RegistrationMessage>& batch);

/// Parses a registration batch; rejects malformed input.
Result<std::vector<RegistrationMessage>> DecodeRegistrationBatch(
    std::string_view bytes);

/// Serializes a report batch. Values must be -1 or +1 (checked).
Result<std::string> EncodeReportBatch(
    const std::vector<ReportMessage>& batch);

/// Parses a report batch; rejects malformed input.
Result<std::vector<ReportMessage>> DecodeReportBatch(std::string_view bytes);

namespace wire_internal {

/// Appends an unsigned LEB128 varint.
void PutVarint64(uint64_t value, std::string* out);

/// Reads a varint from the front of `bytes`, advancing it. Fails on
/// truncation or encodings longer than 10 bytes.
Result<uint64_t> GetVarint64(std::string_view* bytes);

/// ZigZag transforms for signed deltas.
uint64_t ZigZagEncode(int64_t value);
int64_t ZigZagDecode(uint64_t value);

}  // namespace wire_internal
}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_WIRE_H_
