// A pure-DP privacy accountant under sequential composition.
//
// Our protocol charges each user's whole report sequence a single eps (the
// FutureRand certificate covers the entire sequence jointly); the naive
// baseline charges eps/d per period, d times. The accountant makes these
// policies explicit and refuses charges that would exceed the budget —
// the library-level embodiment of the introduction's "naive repetition
// exhausts the budget" observation.

#ifndef FUTURERAND_CORE_ACCOUNTANT_H_
#define FUTURERAND_CORE_ACCOUNTANT_H_

#include <cstdint>
#include <unordered_map>

#include "futurerand/common/status.h"

namespace futurerand::core {

/// Tracks per-user cumulative privacy loss against a fixed budget.
class PrivacyAccountant {
 public:
  /// `budget` is the total eps each user may spend; must be positive.
  explicit PrivacyAccountant(double budget);

  /// Attempts to spend `epsilon` for `user_id`. Fails with
  /// FailedPrecondition (and records nothing) if the budget would be
  /// exceeded; epsilon must be positive.
  Status Charge(int64_t user_id, double epsilon);

  /// Total spent so far by `user_id` (0 if never charged).
  double Spent(int64_t user_id) const;

  /// Remaining budget for `user_id`.
  double Remaining(int64_t user_id) const;

  double budget() const { return budget_; }

  /// Number of users with at least one successful charge.
  int64_t num_users() const { return static_cast<int64_t>(spent_.size()); }

 private:
  double budget_;
  std::unordered_map<int64_t, double> spent_;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_ACCOUNTANT_H_
