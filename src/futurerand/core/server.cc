#include "futurerand/core/server.h"

#include <cmath>
#include <utility>

#include <algorithm>

#include "futurerand/common/macros.h"
#include "futurerand/common/math.h"
#include "futurerand/core/consistency.h"
#include "futurerand/dyadic/decomposition.h"
#include "futurerand/dyadic/tree.h"
#include "futurerand/randomizer/longitudinal.h"

namespace futurerand::core {

Server::Server(int64_t num_periods, std::vector<double> level_scales,
               DedupPolicy policy, DedupWindowPolicy window,
               StoreConfig store, EstimatorSpec estimator)
    : dedup_policy_(policy),
      dedup_window_(window),
      level_scales_(std::move(level_scales)),
      num_periods_(num_periods),
      store_config_(store.Canonical()),
      estimator_spec_(estimator),
      sums_(MakeAggregateStore(store_config_, num_periods)),
      level_counts_(level_scales_.size(), 0) {}

Status EstimatorSpec::Validate() const {
  if (mode != Mode::kDyadic && mode != Mode::kDirect) {
    return Status::InvalidArgument("unknown estimator mode");
  }
  if (mode == Mode::kDyadic) {
    if (direct_offset != 0.0) {
      return Status::InvalidArgument(
          "the dyadic estimator carries no offset; use 0");
    }
    return Status::OK();
  }
  if (!std::isfinite(direct_offset) || direct_offset <= -1.0 ||
      direct_offset >= 1.0) {
    return Status::InvalidArgument(
        "direct estimator offset (u0) must lie in (-1, 1)");
  }
  return Status::OK();
}

const char* DedupPolicyToString(DedupPolicy policy) {
  switch (policy) {
    case DedupPolicy::kStrict:
      return "strict";
    case DedupPolicy::kIdempotent:
      return "idempotent";
  }
  return "unknown";
}

Status DedupWindowPolicy::Validate(DedupPolicy policy) const {
  if (window_boundaries < 0) {
    return Status::InvalidArgument("dedup window must be >= 0");
  }
  if (bounded() && policy != DedupPolicy::kIdempotent) {
    return Status::InvalidArgument(
        "a bounded dedup window requires DedupPolicy::kIdempotent");
  }
  return Status::OK();
}

Result<std::vector<double>> ProtocolLevelScales(
    const ProtocolConfig& config) {
  FR_RETURN_NOT_OK(config.Validate());
  const int orders = config.num_orders();
  std::vector<double> scales(static_cast<size_t>(orders));
  if (rand::IsLongitudinalKind(config.randomizer)) {
    // Every longitudinal client sits at level 0 and reports each tick, so
    // the only live scale inverts the estimator gap u1 - u0 — no
    // (1 + log d) level-sampling factor. Higher orders hold no reports;
    // their zero scales keep any stray read harmless.
    FR_ASSIGN_OR_RETURN(
        const double gap,
        rand::ExactCGap(config.randomizer, config.max_changes, config.epsilon,
                        config.longitudinal_alpha));
    scales[0] = 1.0 / gap;
    return scales;
  }
  for (int h = 0; h < orders; ++h) {
    // Algorithm 2 line 5: (1 + log d) * c_gap^{-1}. The c_gap must match the
    // randomizer the level-h clients instantiated.
    FR_ASSIGN_OR_RETURN(
        double c_gap,
        rand::ExactCGap(config.randomizer, config.SupportAtLevel(h),
                        config.epsilon));
    scales[static_cast<size_t>(h)] =
        static_cast<double>(orders) / c_gap;
  }
  return scales;
}

Result<EstimatorSpec> ProtocolEstimatorSpec(const ProtocolConfig& config) {
  FR_RETURN_NOT_OK(config.Validate());
  EstimatorSpec spec;
  if (rand::IsLongitudinalKind(config.randomizer)) {
    FR_ASSIGN_OR_RETURN(const rand::LongitudinalSpec longitudinal,
                        rand::MakeLongitudinalSpec(config.randomizer,
                                                   config.epsilon,
                                                   config.longitudinal_alpha));
    spec.mode = EstimatorSpec::Mode::kDirect;
    spec.direct_offset = longitudinal.u0;
  }
  return spec;
}

Result<Server> Server::ForProtocol(const ProtocolConfig& config,
                                   DedupPolicy policy,
                                   DedupWindowPolicy window) {
  FR_ASSIGN_OR_RETURN(std::vector<double> scales,
                      ProtocolLevelScales(config));
  FR_ASSIGN_OR_RETURN(const EstimatorSpec estimator,
                      ProtocolEstimatorSpec(config));
  // Through WithScales so the (policy, window, num_periods, store) checks
  // live in exactly one place.
  return WithScales(config.num_periods, std::move(scales), policy, window,
                    config.store, estimator);
}

Result<Server> Server::WithScales(int64_t num_periods,
                                  std::vector<double> level_scales,
                                  DedupPolicy policy,
                                  DedupWindowPolicy window,
                                  StoreConfig store,
                                  EstimatorSpec estimator) {
  FR_RETURN_NOT_OK(window.Validate(policy));
  FR_RETURN_NOT_OK(estimator.Validate());
  // Construction-time, not decode-time: a server with out-of-range sketch
  // parameters must never exist, so no snapshot of one can either.
  FR_RETURN_NOT_OK(store.Validate());
  if (num_periods < 1 || !IsPowerOfTwo(static_cast<uint64_t>(num_periods))) {
    return Status::InvalidArgument("num_periods must be a power of two");
  }
  if (window.window_boundaries > num_periods) {
    // No level has more than d boundaries, so a larger window never
    // evicts; spelling it 0 keeps snapshots canonical (the decoder
    // rejects window > d).
    return Status::InvalidArgument(
        "dedup window exceeds the horizon; use 0 for unbounded");
  }
  const auto expected =
      static_cast<size_t>(Log2Exact(static_cast<uint64_t>(num_periods)) + 1);
  if (level_scales.size() != expected) {
    return Status::InvalidArgument("need one scale per dyadic order");
  }
  return Server(num_periods, std::move(level_scales), policy, window, store,
                estimator);
}

Status Server::RegisterClientStrict(int64_t client_id, int level) {
  if (level < 0 || level >= static_cast<int>(level_scales_.size())) {
    return Status::InvalidArgument("level out of range");
  }
  if (estimator_spec_.direct() && level != 0) {
    // The direct estimator reads only the order-0 row; a deeper client's
    // reports would silently vanish from every query.
    return Status::InvalidArgument(
        "direct-estimator servers accept only level-0 clients");
  }
  if (clients_.Find(client_id) >= 0) {
    return Status::AlreadyExists("client already registered");
  }
  clients_.Insert(client_id);
  client_levels_.push_back(level);
  // Only the active policy's column is populated (the other stays empty).
  if (dedup_policy_ == DedupPolicy::kIdempotent) {
    seen_boundaries_.emplace_back();
  } else {
    last_report_time_.push_back(0);
  }
  ++level_counts_[static_cast<size_t>(level)];
  return Status::OK();
}

Status Server::RegisterClient(int64_t client_id, int level) {
  if (dedup_policy_ == DedupPolicy::kIdempotent) {
    const int32_t slot = clients_.Find(client_id);
    if (slot >= 0) {
      if (client_levels_[static_cast<size_t>(slot)] != level) {
        return Status::AlreadyExists(
            "client already registered at a different level");
      }
      ++duplicates_dropped_;  // faithful retransmission of a registration
      return Status::OK();
    }
  }
  return RegisterClientStrict(client_id, level);
}

int64_t Server::BitmapWordsAtLevel(int level) const {
  const int64_t boundaries = num_periods_ >> level;
  return (boundaries + 63) / 64;
}

void Server::EvictBehindWindow(BoundaryBitmap* bitmap,
                               int64_t frontier) const {
  // Keep every boundary in [frontier - window + 1 .. frontier]; older words
  // are dropped whole, so up to 63 extra boundaries survive until the
  // frontier crosses their word. Called BEFORE the frontier bit is
  // materialized, so a large frontier jump (first report after a long
  // outage) never allocates words it would immediately evict — the
  // materialized span stays O(window) regardless of the jump size.
  const int64_t keep_from = frontier - dedup_window_.window_boundaries + 1;
  const int64_t keep_word = keep_from <= 0 ? 0 : keep_from >> 6;
  if (keep_word <= bitmap->base_word) {
    return;
  }
  const auto drop = static_cast<size_t>(keep_word - bitmap->base_word);
  if (drop >= bitmap->words.size()) {
    // The whole materialized span fell behind the new window.
    bitmap->words.clear();
  } else {
    bitmap->words.erase(bitmap->words.begin(),
                        bitmap->words.begin() + static_cast<int64_t>(drop));
  }
  bitmap->base_word = keep_word;
}

Status Server::CheckAndRecordReport(int64_t client_id, int64_t time,
                                    int8_t report, int* level_out,
                                    ReportAction* action) {
  if (report != -1 && report != 1) {
    return Status::InvalidArgument("reports must be -1 or +1");
  }
  const int32_t client_slot = clients_.Find(client_id);
  if (client_slot < 0) {
    return Status::NotFound("client not registered");
  }
  const int level = client_levels_[static_cast<size_t>(client_slot)];
  const int64_t interval_length = int64_t{1} << level;
  if (time < 1 || time > num_periods_) {
    return Status::OutOfRange("report time outside [1..d]");
  }
  if (time % interval_length != 0) {
    return Status::InvalidArgument(
        "level-h clients report only at multiples of 2^h");
  }
  *level_out = level;
  *action = ReportAction::kApply;
  if (dedup_policy_ == DedupPolicy::kIdempotent) {
    BoundaryBitmap& seen = seen_boundaries_[static_cast<size_t>(client_slot)];
    const int64_t boundary = (time >> level) - 1;
    const int64_t word = boundary >> 6;
    if (boundary > seen.frontier && dedup_window_.bounded()) {
      // This report is about to advance the frontier: evict against the
      // new frontier first, so the resize below only materializes words
      // inside the window (a boundary above the frontier can never be a
      // duplicate, so the report is guaranteed to land).
      EvictBehindWindow(&seen, boundary);
    }
    if (word < seen.base_word) {
      // Evicted horizon: the bit is gone, so a first delivery and a
      // retransmission are indistinguishable. Refuse to guess.
      ++out_of_window_dropped_;
      *action = ReportAction::kAbsorb;
      return Status::OK();
    }
    const auto slot = static_cast<size_t>(word - seen.base_word);
    if (slot >= seen.words.size()) {
      seen.words.resize(slot + 1, 0);
    }
    const uint64_t bit = uint64_t{1} << (boundary & 63);
    if ((seen.words[slot] & bit) != 0) {
      ++duplicates_dropped_;
      *action = ReportAction::kAbsorb;
      return Status::OK();
    }
    seen.words[slot] |= bit;
    if (boundary > seen.frontier) {
      seen.frontier = boundary;
    }
  } else {
    int64_t& last_time = last_report_time_[static_cast<size_t>(client_slot)];
    if (time <= last_time) {
      return Status::InvalidArgument("duplicate or out-of-order report");
    }
    last_time = time;
  }
  return Status::OK();
}

Status Server::SubmitReport(int64_t client_id, int64_t time, int8_t report) {
  int level = 0;
  ReportAction action = ReportAction::kAbsorb;
  FR_RETURN_NOT_OK(
      CheckAndRecordReport(client_id, time, report, &level, &action));
  if (action == ReportAction::kApply) {
    sums_->Add(level, time >> level, report);
  }
  return Status::OK();
}

Status Server::SubmitReports(std::span<const ReportMessage> batch,
                             int64_t* accepted) {
  return IngestRecords(batch, /*indices=*/nullptr, batch.size(), accepted);
}

Status Server::SubmitReports(std::span<const ReportMessage> batch,
                             std::span<const size_t> indices,
                             int64_t* accepted) {
  return IngestRecords(batch, indices.data(), indices.size(), accepted);
}

Status Server::IngestRecords(std::span<const ReportMessage> batch,
                             const size_t* indices, size_t count,
                             int64_t* accepted) {
  // Per-level accumulator for the current run of same-time records. A fleet
  // tick emits a whole batch at one time t, so the common case flushes the
  // buffer exactly once: O(orders) tree stores for the entire batch instead
  // of one tree walk per report.
  std::vector<int64_t> level_accum(level_counts_.size(), 0);
  int64_t pending_time = 0;  // 0 = nothing buffered (report times are >= 1)
  const auto flush = [&] {
    if (pending_time == 0) {
      return;
    }
    for (size_t h = 0; h < level_accum.size(); ++h) {
      if (level_accum[h] != 0) {
        sums_->Add(static_cast<int>(h), pending_time >> h, level_accum[h]);
        level_accum[h] = 0;
      }
    }
    pending_time = 0;
  };
  int64_t done = 0;
  Status status;
  for (size_t i = 0; i < count; ++i) {
    const ReportMessage& record =
        batch[indices == nullptr ? i : indices[i]];
    if (record.time != pending_time) {
      flush();
    }
    int level = 0;
    ReportAction action = ReportAction::kAbsorb;
    status = CheckAndRecordReport(record.client_id, record.time, record.value,
                                  &level, &action);
    if (!status.ok()) {
      break;
    }
    if (action == ReportAction::kApply) {
      pending_time = record.time;
      level_accum[static_cast<size_t>(level)] += record.value;
    }
    ++done;
  }
  flush();
  if (accepted != nullptr) {
    *accepted = done;
  }
  return status;
}

Result<double> Server::EstimateAt(int64_t t) const {
  if (t < 1 || t > num_periods_) {
    return Status::OutOfRange("query time outside [1..d]");
  }
  if (estimator_spec_.direct()) {
    // Every report at time t is a level-0 client's perturbed value, so the
    // unbiased read is a plain shift-and-rescale of the order-0 sum:
    //   (S_t - n_0 * u0) / (u1 - u0), with 1/(u1 - u0) in level_scales_[0].
    const double raw = static_cast<double>(sums_->Value(0, t));
    const double n0 = static_cast<double>(level_counts_[0]);
    return level_scales_[0] * (raw - n0 * estimator_spec_.direct_offset);
  }
  double estimate = 0.0;
  for (const dyadic::DyadicInterval& interval : dyadic::DecomposePrefix(t)) {
    estimate += level_scales_[static_cast<size_t>(interval.order)] *
                static_cast<double>(
                    sums_->Value(interval.order, interval.index));
  }
  return estimate;
}

Result<double> Server::EstimateWindowDelta(int64_t l, int64_t r) const {
  if (l < 1 || l > r || r > num_periods_) {
    return Status::OutOfRange("window outside [1..d]");
  }
  if (estimator_spec_.direct()) {
    // No dyadic decomposition to exploit: the windowed change is just the
    // difference of the two point estimates (a[l-1] is 0 by the st[0] = 0
    // convention when l == 1).
    FR_ASSIGN_OR_RETURN(const double at_r, EstimateAt(r));
    if (l == 1) {
      return at_r;
    }
    FR_ASSIGN_OR_RETURN(const double at_l, EstimateAt(l - 1));
    return at_r - at_l;
  }
  // Each interval's partial sum telescopes to st[end] - st[begin-1], so the
  // decomposition of [l..r] sums to a[r] - a[l-1] (Observation 3.7).
  double estimate = 0.0;
  for (const dyadic::DyadicInterval& interval : dyadic::DecomposeRange(l, r)) {
    estimate += level_scales_[static_cast<size_t>(interval.order)] *
                static_cast<double>(
                    sums_->Value(interval.order, interval.index));
  }
  return estimate;
}

Result<std::vector<double>> Server::EstimateAll() const {
  std::vector<double> estimates;
  estimates.reserve(static_cast<size_t>(num_periods_));
  for (int64_t t = 1; t <= num_periods_; ++t) {
    FR_ASSIGN_OR_RETURN(double estimate, EstimateAt(t));
    estimates.push_back(estimate);
  }
  return estimates;
}

Result<std::vector<double>> Server::EstimateAllConsistent() const {
  if (estimator_spec_.direct()) {
    // The direct estimator keeps one reading per period — there is no
    // redundant ancestor/descendant structure for GLS to reconcile, so the
    // consistent estimates are the plain ones.
    return EstimateAll();
  }
  const int64_t d = num_periods_;
  const int orders = static_cast<int>(level_scales_.size());
  // Dense-sized scratch regardless of backend: consistency refines every
  // interval estimate, so this offline path costs O(d) memory even when
  // the store itself is sketched.
  dyadic::DyadicTree<double> estimates(d);
  std::vector<double> level_variances(static_cast<size_t>(orders));
  for (int h = 0; h < orders; ++h) {
    const double scale = level_scales_[static_cast<size_t>(h)];
    const int64_t count = dyadic::NumIntervalsAtOrder(d, h);
    for (int64_t j = 1; j <= count; ++j) {
      estimates.At(h, j) = scale * static_cast<double>(sums_->Value(h, j));
    }
    // Var(S_hat(I_{h,j})) ~ n_h * scale_h^2 (each of the ~n/(1+log d)
    // level-h reporters contributes one +/-1 of variance ~1, scaled).
    // A floor of one reporter keeps empty levels from being treated as
    // infinitely trustworthy zeros.
    const auto reporters =
        std::max<int64_t>(level_counts_[static_cast<size_t>(h)], 1);
    level_variances[static_cast<size_t>(h)] =
        static_cast<double>(reporters) * scale * scale;
  }
  FR_RETURN_NOT_OK(EnforceTreeConsistency(level_variances, &estimates));
  std::vector<double> results;
  results.reserve(static_cast<size_t>(d));
  for (int64_t t = 1; t <= d; ++t) {
    results.push_back(estimates.PrefixSum(t));
  }
  return results;
}

Status Server::Merge(const Server& other) {
  FR_RETURN_NOT_OK(CheckMergeCompatible(other));
  const std::vector<int64_t>& other_ids = other.clients_.ids();
  for (size_t slot = 0; slot < other_ids.size(); ++slot) {
    // Strict registration regardless of policy: merged shards partition the
    // client population, so a shared id is a sharding bug, not a retry.
    FR_RETURN_NOT_OK(RegisterClientStrict(other_ids[slot],
                                          other.client_levels_[slot]));
    // RegisterClientStrict pushed a default column entry; overwrite it with
    // the source client's dedup state.
    if (dedup_policy_ == DedupPolicy::kIdempotent) {
      seen_boundaries_.back() = other.seen_boundaries_[slot];
    } else {
      last_report_time_.back() = other.last_report_time_[slot];
    }
  }
  duplicates_dropped_ += other.duplicates_dropped_;
  out_of_window_dropped_ += other.out_of_window_dropped_;
  AddSums(other);
  return Status::OK();
}

Status Server::MergeAggregatesOnly(const Server& other) {
  FR_RETURN_NOT_OK(CheckMergeCompatible(other));
  for (size_t h = 0; h < level_counts_.size(); ++h) {
    level_counts_[h] += other.level_counts_[h];
  }
  AddSums(other);
  return Status::OK();
}

Status Server::CheckMergeCompatible(const Server& other) const {
  if (other.num_periods_ != num_periods_) {
    return Status::InvalidArgument("cannot merge servers of different shape");
  }
  // Stores merge cell-wise, so both sides must bucket identically: same
  // backend, and under kSketch the same rows/width/seed.
  if (other.store_config_ != store_config_) {
    return Status::InvalidArgument(
        "cannot merge servers with mismatched store configs");
  }
  // Same shape is not enough: shards debiasing with different per-level
  // scales would silently mix estimators, so scales must match exactly.
  if (other.level_scales_ != level_scales_) {
    return Status::InvalidArgument(
        "cannot merge servers with mismatched level scales");
  }
  if (other.estimator_spec_ != estimator_spec_) {
    return Status::InvalidArgument(
        "cannot merge servers with mismatched estimator specs");
  }
  if (other.dedup_policy_ != dedup_policy_) {
    return Status::InvalidArgument(
        "cannot merge servers with mismatched dedup policies");
  }
  if (other.dedup_window_ != dedup_window_) {
    return Status::InvalidArgument(
        "cannot merge servers with mismatched dedup windows");
  }
  return Status::OK();
}

void Server::AddSums(const Server& other) {
  // Same shape and store config (checked by every caller), so the cell
  // arenas align element-wise.
  sums_->AccumulateCells(*other.sums_);
}

int64_t Server::ClientCountAtLevel(int level) const {
  FR_CHECK(level >= 0 && level < static_cast<int>(level_counts_.size()));
  return level_counts_[static_cast<size_t>(level)];
}

double Server::ScaleAtLevel(int level) const {
  FR_CHECK(level >= 0 && level < static_cast<int>(level_scales_.size()));
  return level_scales_[static_cast<size_t>(level)];
}

int64_t Server::ApproxMemoryBytes() const {
  // Columns are charged their capacity; bitmaps additionally charge their
  // word storage. An estimate, but monotone in the real footprint, which is
  // what sizing a DedupWindowPolicy needs.
  int64_t bytes = static_cast<int64_t>(sizeof(Server));
  bytes += sums_->ApproxMemoryBytes();
  bytes += static_cast<int64_t>(level_scales_.capacity() * sizeof(double));
  bytes += static_cast<int64_t>(level_counts_.capacity() * sizeof(int64_t));
  bytes += clients_.ApproxMemoryBytes();
  bytes += static_cast<int64_t>(client_levels_.capacity() * sizeof(int32_t));
  bytes +=
      static_cast<int64_t>(last_report_time_.capacity() * sizeof(int64_t));
  bytes += static_cast<int64_t>(seen_boundaries_.capacity() *
                                sizeof(BoundaryBitmap));
  for (const BoundaryBitmap& bitmap : seen_boundaries_) {
    bytes +=
        static_cast<int64_t>(bitmap.words.capacity() * sizeof(uint64_t));
  }
  return bytes;
}

}  // namespace futurerand::core
