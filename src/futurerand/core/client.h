// The client-side algorithm A_clt (Algorithm 1).
//
// On construction the client samples its order h_u uniformly from
// [0..log d] (reported to the server in the clear: the draw is independent
// of the data) and pre-initializes its sequence randomizer. At every time
// period it ingests the user's current Boolean value; whenever 2^{h_u}
// divides t it emits the randomized partial sum for the dyadic interval
// ending at t.

#ifndef FUTURERAND_CORE_CLIENT_H_
#define FUTURERAND_CORE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "futurerand/common/result.h"
#include "futurerand/core/config.h"
#include "futurerand/randomizer/randomizer.h"

namespace futurerand::core {

/// One user's state machine. Move-only; not thread-safe.
class Client {
 public:
  /// Samples the level and initializes the randomizer. All client randomness
  /// (level draw, randomizer noise) derives from `seed`.
  static Result<Client> Create(const ProtocolConfig& config, uint64_t seed);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// The sampled order h_u in [0..log d]; sent to the server on
  /// registration. Independent of the user's data.
  int level() const { return level_; }

  /// Ingests the user's Boolean value st_u[t] for the next time period
  /// (t starts at 1 and advances by one per call; the paper's convention
  /// st_u[0] = 0 means a user whose first value is 1 spends one change).
  /// Returns the perturbed report in {-1,+1} when 2^{h_u} divides t,
  /// std::nullopt otherwise. Errors if `state` is not 0/1 or more than d
  /// values are fed.
  Result<std::optional<int8_t>> ObserveState(int8_t state);

  /// Equivalent input path taking the discrete derivative
  /// X_u[t] in {-1,0,+1} (Definition 3.1) instead of the state. Errors if
  /// the implied state would leave {0,1}.
  Result<std::optional<int8_t>> ObserveDerivative(int8_t derivative);

  /// Time periods ingested so far.
  int64_t current_time() const { return time_; }

  /// Reports emitted so far (== floor(current_time / 2^{h_u})).
  int64_t reports_sent() const { return reports_sent_; }

  /// Value changes observed so far, under the st_u[0] = 0 convention. May
  /// legitimately exceed max_changes only if the caller violates the
  /// workload contract; the randomizer then clamps (see
  /// support_overflow_count).
  int64_t changes_seen() const { return changes_seen_; }

  /// Non-zero partial sums that exceeded the randomizer's sparsity budget
  /// and were clamped to noise-only reports. Always 0 for contract-abiding
  /// inputs.
  int64_t support_overflow_count() const {
    return randomizer_->support_overflow_count();
  }

  /// The exact c_gap of the underlying randomizer (the server needs the
  /// same constant for debiasing).
  double c_gap() const { return randomizer_->c_gap(); }

  /// Read access to the underlying randomizer (for audits and tests).
  const rand::SequenceRandomizer& randomizer() const { return *randomizer_; }

 private:
  Client(const ProtocolConfig& config, int level,
         std::unique_ptr<rand::SequenceRandomizer> randomizer);

  ProtocolConfig config_;
  int level_;
  int64_t interval_length_;  // 2^{h_u}
  std::unique_ptr<rand::SequenceRandomizer> randomizer_;

  int64_t time_ = 0;
  int8_t current_state_ = 0;   // st_u[t], with st_u[0] = 0
  int8_t boundary_state_ = 0;  // st_u at the last dyadic boundary
  int64_t reports_sent_ = 0;
  int64_t changes_seen_ = 0;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_CLIENT_H_
