#include "futurerand/core/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/common/math.h"
#include "futurerand/core/wire.h"
#include "futurerand/dyadic/decomposition.h"

namespace futurerand::core {

namespace {

using wire_internal::AppendChecksum;
using wire_internal::AppendHeader;
using wire_internal::ConsumeChecksum;
using wire_internal::ConsumeHeader;
using wire_internal::GetVarint64;
using wire_internal::PutVarint64;
using wire_internal::ZigZagDecode;
using wire_internal::ZigZagEncode;

void PutDoubleBits(double value, std::string* out) {
  wire_internal::PutFixed64(std::bit_cast<uint64_t>(value), out);
}

Result<double> GetDoubleBits(std::string_view* bytes) {
  FR_ASSIGN_OR_RETURN(const uint64_t bits,
                      wire_internal::GetFixed64(bytes));
  return std::bit_cast<double>(bits);
}

// Decoded varints drive allocations, so every size read from the wire is
// cross-checked against the bytes that remain: a field claiming more
// records than the blob could possibly hold is rejected before any
// allocation, keeping memory use proportional to the input size.
Status CheckPlausibleCount(uint64_t count, size_t min_bytes_per_item,
                           std::string_view remaining) {
  if (count > remaining.size() / std::max<size_t>(min_bytes_per_item, 1)) {
    return Status::InvalidArgument("record count exceeds blob size");
  }
  return Status::OK();
}

}  // namespace

// Friend of Server: the only code that reads/writes its private state.
struct ServerStateCodec {
  static std::string Encode(const Server& server) {
    std::string out;
    AppendHeader(wire_internal::kKindServerState, &out);
    PutVarint64(static_cast<uint64_t>(server.sums_.domain_size()), &out);
    PutVarint64(server.dedup_policy_ == DedupPolicy::kIdempotent ? 1 : 0,
                &out);
    const int orders = server.sums_.num_orders();
    PutVarint64(static_cast<uint64_t>(orders), &out);
    for (int h = 0; h < orders; ++h) {
      PutDoubleBits(server.level_scales_[static_cast<size_t>(h)], &out);
      PutVarint64(
          static_cast<uint64_t>(server.level_counts_[static_cast<size_t>(h)]),
          &out);
    }
    for (int h = 0; h < orders; ++h) {
      const int64_t count =
          dyadic::NumIntervalsAtOrder(server.sums_.domain_size(), h);
      for (int64_t j = 1; j <= count; ++j) {
        PutVarint64(ZigZagEncode(server.sums_.At(h, j)), &out);
      }
    }
    PutVarint64(static_cast<uint64_t>(server.duplicates_dropped_), &out);

    // Clients in id order: unordered_map iteration would make equal states
    // encode to different bytes.
    std::vector<int64_t> ids;
    ids.reserve(server.client_levels_.size());
    for (const auto& [id, level] : server.client_levels_) {
      ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    PutVarint64(ids.size(), &out);
    int64_t previous_id = 0;
    for (const int64_t id : ids) {
      const int level = server.client_levels_.at(id);
      PutVarint64(ZigZagEncode(id - previous_id), &out);
      PutVarint64(static_cast<uint64_t>(level), &out);
      previous_id = id;
      if (server.dedup_policy_ == DedupPolicy::kIdempotent) {
        const auto seen_it = server.seen_boundaries_.find(id);
        const int64_t words = server.BitmapWordsAtLevel(level);
        for (int64_t w = 0; w < words; ++w) {
          const uint64_t word =
              (seen_it != server.seen_boundaries_.end() &&
               !seen_it->second.empty())
                  ? seen_it->second[static_cast<size_t>(w)]
                  : 0;
          PutVarint64(word, &out);
        }
      } else {
        const auto last_it = server.last_report_time_.find(id);
        const int64_t last =
            last_it != server.last_report_time_.end() ? last_it->second : 0;
        PutVarint64(static_cast<uint64_t>(last), &out);
      }
    }
    AppendChecksum(&out);
    return out;
  }

  static Result<Server> Decode(std::string_view bytes) {
    FR_RETURN_NOT_OK(ConsumeChecksum(&bytes));
    FR_RETURN_NOT_OK(ConsumeHeader(wire_internal::kKindServerState, &bytes));
    FR_ASSIGN_OR_RETURN(const uint64_t raw_periods, GetVarint64(&bytes));
    if (raw_periods < 1 || raw_periods > (uint64_t{1} << 40) ||
        !IsPowerOfTwo(raw_periods)) {
      return Status::InvalidArgument("implausible snapshot num_periods");
    }
    const auto d = static_cast<int64_t>(raw_periods);
    // The sums section alone needs 2d-1 varints of >= 1 byte.
    FR_RETURN_NOT_OK(CheckPlausibleCount(raw_periods, 2, bytes));
    FR_ASSIGN_OR_RETURN(const uint64_t policy_byte, GetVarint64(&bytes));
    if (policy_byte > 1) {
      return Status::InvalidArgument("unknown snapshot dedup policy");
    }
    const DedupPolicy policy = policy_byte == 1 ? DedupPolicy::kIdempotent
                                                : DedupPolicy::kStrict;
    FR_ASSIGN_OR_RETURN(const uint64_t orders, GetVarint64(&bytes));
    if (orders != static_cast<uint64_t>(Log2Exact(raw_periods) + 1)) {
      return Status::InvalidArgument("snapshot level count mismatches d");
    }
    std::vector<double> scales(static_cast<size_t>(orders));
    std::vector<int64_t> counts(static_cast<size_t>(orders));
    for (uint64_t h = 0; h < orders; ++h) {
      FR_ASSIGN_OR_RETURN(scales[h], GetDoubleBits(&bytes));
      FR_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(&bytes));
      if (count > (uint64_t{1} << 62)) {
        return Status::InvalidArgument("implausible snapshot level count");
      }
      counts[h] = static_cast<int64_t>(count);
    }
    FR_ASSIGN_OR_RETURN(Server server, Server::WithScales(d, scales, policy));
    server.level_counts_ = std::move(counts);
    for (int h = 0; h < static_cast<int>(orders); ++h) {
      const int64_t count = dyadic::NumIntervalsAtOrder(d, h);
      for (int64_t j = 1; j <= count; ++j) {
        FR_ASSIGN_OR_RETURN(const uint64_t raw_sum, GetVarint64(&bytes));
        server.sums_.At(h, j) = ZigZagDecode(raw_sum);
      }
    }
    FR_ASSIGN_OR_RETURN(const uint64_t dropped, GetVarint64(&bytes));
    if (dropped > (uint64_t{1} << 62)) {
      return Status::InvalidArgument("implausible snapshot duplicate count");
    }
    server.duplicates_dropped_ = static_cast<int64_t>(dropped);

    FR_ASSIGN_OR_RETURN(const uint64_t num_clients, GetVarint64(&bytes));
    FR_RETURN_NOT_OK(CheckPlausibleCount(num_clients, 3, bytes));
    server.client_levels_.reserve(num_clients);
    int64_t previous_id = 0;
    for (uint64_t c = 0; c < num_clients; ++c) {
      FR_ASSIGN_OR_RETURN(const uint64_t id_delta, GetVarint64(&bytes));
      FR_ASSIGN_OR_RETURN(const uint64_t raw_level, GetVarint64(&bytes));
      if (raw_level >= orders) {
        return Status::InvalidArgument("snapshot client level out of range");
      }
      const int64_t id = previous_id + ZigZagDecode(id_delta);
      const int level = static_cast<int>(raw_level);
      previous_id = id;
      if (!server.client_levels_.emplace(id, level).second) {
        return Status::InvalidArgument("snapshot repeats a client id");
      }
      if (policy == DedupPolicy::kIdempotent) {
        const int64_t words = server.BitmapWordsAtLevel(level);
        std::vector<uint64_t> seen(static_cast<size_t>(words), 0);
        bool any = false;
        for (int64_t w = 0; w < words; ++w) {
          FR_ASSIGN_OR_RETURN(seen[static_cast<size_t>(w)],
                              GetVarint64(&bytes));
          any = any || seen[static_cast<size_t>(w)] != 0;
        }
        if (any) {
          server.seen_boundaries_.emplace(id, std::move(seen));
        }
      } else {
        FR_ASSIGN_OR_RETURN(const uint64_t last, GetVarint64(&bytes));
        if (last > raw_periods ||
            last % (uint64_t{1} << static_cast<uint64_t>(level)) != 0) {
          return Status::InvalidArgument(
              "snapshot last report time invalid for level");
        }
        if (last != 0) {
          server.last_report_time_[id] = static_cast<int64_t>(last);
        }
      }
    }
    if (!bytes.empty()) {
      return Status::InvalidArgument("trailing bytes after snapshot");
    }
    return server;
  }
};

std::string EncodeServerState(const Server& server) {
  return ServerStateCodec::Encode(server);
}

Result<Server> DecodeServerState(std::string_view bytes) {
  return ServerStateCodec::Decode(bytes);
}

std::string EncodeAggregatorState(const std::vector<std::string>& shards) {
  std::string out;
  AppendHeader(wire_internal::kKindAggregatorState, &out);
  PutVarint64(shards.size(), &out);
  for (const std::string& shard : shards) {
    PutVarint64(shard.size(), &out);
    out.append(shard);
  }
  AppendChecksum(&out);
  return out;
}

Result<std::vector<std::string>> DecodeAggregatorState(
    std::string_view bytes) {
  FR_RETURN_NOT_OK(ConsumeChecksum(&bytes));
  FR_RETURN_NOT_OK(
      ConsumeHeader(wire_internal::kKindAggregatorState, &bytes));
  FR_ASSIGN_OR_RETURN(const uint64_t num_shards, GetVarint64(&bytes));
  FR_RETURN_NOT_OK(CheckPlausibleCount(num_shards, 1, bytes));
  std::vector<std::string> shards;
  shards.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    FR_ASSIGN_OR_RETURN(const uint64_t length, GetVarint64(&bytes));
    if (length > bytes.size()) {
      return Status::InvalidArgument("truncated shard state");
    }
    shards.emplace_back(bytes.substr(0, length));
    bytes.remove_prefix(length);
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  return shards;
}

}  // namespace futurerand::core
