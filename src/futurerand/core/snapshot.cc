#include "futurerand/core/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/common/math.h"
#include "futurerand/core/sketch_store.h"
#include "futurerand/core/wire.h"
#include "futurerand/dyadic/decomposition.h"

namespace futurerand::core {

namespace {

using wire_internal::AppendChecksum;
using wire_internal::AppendHeader;
using wire_internal::ConsumeChecksum;
using wire_internal::ConsumeHeader;
using wire_internal::GetVarint64;
using wire_internal::PutVarint64;
using wire_internal::ZigZagDecode;
using wire_internal::ZigZagEncode;

void PutDoubleBits(double value, std::string* out) {
  wire_internal::PutFixed64(std::bit_cast<uint64_t>(value), out);
}

Result<double> GetDoubleBits(std::string_view* bytes) {
  FR_ASSIGN_OR_RETURN(const uint64_t bits,
                      wire_internal::GetFixed64(bytes));
  return std::bit_cast<double>(bits);
}

// Decoded varints drive allocations, so every size read from the wire is
// cross-checked against the bytes that remain: a field claiming more
// records than the blob could possibly hold is rejected before any
// allocation, keeping memory use proportional to the input size.
Status CheckPlausibleCount(uint64_t count, size_t min_bytes_per_item,
                           std::string_view remaining) {
  if (count > remaining.size() / std::max<size_t>(min_bytes_per_item, 1)) {
    return Status::InvalidArgument("record count exceeds blob size");
  }
  return Status::OK();
}

}  // namespace

// Friend of Server: the only code that reads/writes its private state.
struct ServerStateCodec {
  static std::string Encode(const Server& server) {
    // The store picks the blob kind: kServerState (3) keeps the exact
    // pre-store byte layout for dense servers; kServerStateSketch (8)
    // inserts the sketch parameters after d and serializes the raw cell
    // arena instead of per-interval counters.
    const bool sketch = server.store_config_.kind == StoreKind::kSketch;
    std::string out;
    AppendHeader(sketch ? wire_internal::kKindServerStateSketch
                        : wire_internal::kKindServerState,
                 &out);
    PutVarint64(static_cast<uint64_t>(server.num_periods_), &out);
    if (sketch) {
      PutVarint64(static_cast<uint64_t>(server.store_config_.sketch_rows),
                  &out);
      PutVarint64(static_cast<uint64_t>(server.store_config_.sketch_width),
                  &out);
      PutVarint64(server.store_config_.sketch_seed, &out);
    }
    PutVarint64(server.dedup_policy_ == DedupPolicy::kIdempotent ? 1 : 0,
                &out);
    PutVarint64(
        static_cast<uint64_t>(server.dedup_window_.window_boundaries), &out);
    // Estimator mode, with the direct offset (u0) only when it applies —
    // dyadic snapshots keep the pre-longitudinal byte cost.
    const bool direct = server.estimator_spec_.direct();
    PutVarint64(direct ? 1 : 0, &out);
    if (direct) {
      PutDoubleBits(server.estimator_spec_.direct_offset, &out);
    }
    const auto orders = static_cast<int>(server.level_scales_.size());
    PutVarint64(static_cast<uint64_t>(orders), &out);
    for (int h = 0; h < orders; ++h) {
      PutDoubleBits(server.level_scales_[static_cast<size_t>(h)], &out);
      PutVarint64(
          static_cast<uint64_t>(server.level_counts_[static_cast<size_t>(h)]),
          &out);
    }
    if (sketch) {
      const auto& store = static_cast<const SketchStore&>(*server.sums_);
      for (const int64_t cell : store.cells()) {
        PutVarint64(ZigZagEncode(cell), &out);
      }
    } else {
      for (int h = 0; h < orders; ++h) {
        const int64_t count =
            dyadic::NumIntervalsAtOrder(server.num_periods_, h);
        for (int64_t j = 1; j <= count; ++j) {
          PutVarint64(ZigZagEncode(server.sums_->Value(h, j)), &out);
        }
      }
    }
    PutVarint64(static_cast<uint64_t>(server.duplicates_dropped_), &out);
    PutVarint64(static_cast<uint64_t>(server.out_of_window_dropped_), &out);

    // Clients in id order: slot (insertion) order would make equal states
    // encode to different bytes.
    std::vector<int64_t> ids = server.clients_.ids();
    std::sort(ids.begin(), ids.end());
    PutVarint64(ids.size(), &out);
    int64_t previous_id = 0;
    for (const int64_t id : ids) {
      const auto slot = static_cast<size_t>(server.clients_.Find(id));
      PutVarint64(ZigZagEncode(id - previous_id), &out);
      PutVarint64(static_cast<uint64_t>(server.client_levels_[slot]), &out);
      previous_id = id;
      if (server.dedup_policy_ == DedupPolicy::kIdempotent) {
        // Only the materialized window is serialized: the eviction
        // watermark (base_word) plus the live words. A client that never
        // reported has an empty bitmap (base_word 0) and costs two zero
        // bytes.
        const Server::BoundaryBitmap& bitmap = server.seen_boundaries_[slot];
        PutVarint64(static_cast<uint64_t>(bitmap.base_word), &out);
        PutVarint64(bitmap.words.size(), &out);
        for (const uint64_t word : bitmap.words) {
          PutVarint64(word, &out);
        }
      } else {
        PutVarint64(static_cast<uint64_t>(server.last_report_time_[slot]),
                    &out);
      }
    }
    AppendChecksum(&out);
    return out;
  }

  static Result<Server> Decode(std::string_view bytes) {
    FR_RETURN_NOT_OK(ConsumeChecksum(&bytes));
    FR_ASSIGN_OR_RETURN(const char kind, wire_internal::CheckHeader(bytes));
    if (kind != wire_internal::kKindServerState &&
        kind != wire_internal::kKindServerStateSketch) {
      return Status::InvalidArgument("unexpected batch kind");
    }
    bytes.remove_prefix(wire_internal::kHeaderSize);
    const bool sketch = kind == wire_internal::kKindServerStateSketch;
    FR_ASSIGN_OR_RETURN(const uint64_t raw_periods, GetVarint64(&bytes));
    if (raw_periods < 1 || raw_periods > (uint64_t{1} << 40) ||
        !IsPowerOfTwo(raw_periods)) {
      return Status::InvalidArgument("implausible snapshot num_periods");
    }
    const auto d = static_cast<int64_t>(raw_periods);
    StoreConfig store;
    if (sketch) {
      FR_ASSIGN_OR_RETURN(const uint64_t raw_rows, GetVarint64(&bytes));
      FR_ASSIGN_OR_RETURN(const uint64_t raw_width, GetVarint64(&bytes));
      FR_ASSIGN_OR_RETURN(const uint64_t raw_seed, GetVarint64(&bytes));
      if (raw_rows > static_cast<uint64_t>(SketchStore::kMaxRows) ||
          raw_width > static_cast<uint64_t>(SketchStore::kMaxWidth)) {
        return Status::InvalidArgument("implausible snapshot sketch shape");
      }
      store = StoreConfig::Sketch(static_cast<int32_t>(raw_rows),
                                  static_cast<int64_t>(raw_width), raw_seed);
      // The encoder can only serialize a validly constructed store, so a
      // blob carrying bad parameters is corrupt or hand-forged.
      FR_RETURN_NOT_OK(store.Validate());
      // The cells section needs one byte per cell at minimum; checking
      // before the store exists keeps allocation proportional to the blob.
      FR_RETURN_NOT_OK(CheckPlausibleCount(
          static_cast<uint64_t>(SketchStore::CellCount(
              d, store.sketch_rows, store.sketch_width)),
          1, bytes));
    } else {
      // The sums section alone needs 2d-1 varints of >= 1 byte.
      FR_RETURN_NOT_OK(CheckPlausibleCount(raw_periods, 2, bytes));
    }
    FR_ASSIGN_OR_RETURN(const uint64_t policy_byte, GetVarint64(&bytes));
    if (policy_byte > 1) {
      return Status::InvalidArgument("unknown snapshot dedup policy");
    }
    const DedupPolicy policy = policy_byte == 1 ? DedupPolicy::kIdempotent
                                                : DedupPolicy::kStrict;
    FR_ASSIGN_OR_RETURN(const uint64_t raw_window, GetVarint64(&bytes));
    if (raw_window > raw_periods) {
      return Status::InvalidArgument("implausible snapshot dedup window");
    }
    const DedupWindowPolicy window{static_cast<int64_t>(raw_window)};
    FR_RETURN_NOT_OK(window.Validate(policy));
    FR_ASSIGN_OR_RETURN(const uint64_t mode_byte, GetVarint64(&bytes));
    if (mode_byte > 1) {
      return Status::InvalidArgument("unknown snapshot estimator mode");
    }
    EstimatorSpec estimator;
    if (mode_byte == 1) {
      estimator.mode = EstimatorSpec::Mode::kDirect;
      FR_ASSIGN_OR_RETURN(estimator.direct_offset, GetDoubleBits(&bytes));
    }
    // Full field validation (finite offset in (-1,1), zero under dyadic)
    // happens in Server::WithScales below via EstimatorSpec::Validate.
    FR_ASSIGN_OR_RETURN(const uint64_t orders, GetVarint64(&bytes));
    if (orders != static_cast<uint64_t>(Log2Exact(raw_periods) + 1)) {
      return Status::InvalidArgument("snapshot level count mismatches d");
    }
    std::vector<double> scales(static_cast<size_t>(orders));
    std::vector<int64_t> counts(static_cast<size_t>(orders));
    for (uint64_t h = 0; h < orders; ++h) {
      FR_ASSIGN_OR_RETURN(scales[h], GetDoubleBits(&bytes));
      FR_ASSIGN_OR_RETURN(const uint64_t count, GetVarint64(&bytes));
      if (count > (uint64_t{1} << 62)) {
        return Status::InvalidArgument("implausible snapshot level count");
      }
      if (estimator.direct() && h > 0 && count != 0) {
        // Direct-estimator servers register only level-0 clients, so a
        // deeper population can only come from corruption or forgery.
        return Status::InvalidArgument(
            "direct-estimator snapshot claims clients above level 0");
      }
      counts[h] = static_cast<int64_t>(count);
    }
    FR_ASSIGN_OR_RETURN(Server server,
                        Server::WithScales(d, scales, policy, window, store,
                                           estimator));
    server.level_counts_ = std::move(counts);
    if (sketch) {
      auto& sketch_store = static_cast<SketchStore&>(*server.sums_);
      for (int64_t& cell : sketch_store.cells()) {
        FR_ASSIGN_OR_RETURN(const uint64_t raw_cell, GetVarint64(&bytes));
        cell = ZigZagDecode(raw_cell);
      }
    } else {
      for (int h = 0; h < static_cast<int>(orders); ++h) {
        const int64_t count = dyadic::NumIntervalsAtOrder(d, h);
        for (int64_t j = 1; j <= count; ++j) {
          FR_ASSIGN_OR_RETURN(const uint64_t raw_sum, GetVarint64(&bytes));
          server.sums_->Add(h, j, ZigZagDecode(raw_sum));
        }
      }
    }
    FR_ASSIGN_OR_RETURN(const uint64_t dropped, GetVarint64(&bytes));
    if (dropped > (uint64_t{1} << 62)) {
      return Status::InvalidArgument("implausible snapshot duplicate count");
    }
    server.duplicates_dropped_ = static_cast<int64_t>(dropped);
    FR_ASSIGN_OR_RETURN(const uint64_t out_of_window, GetVarint64(&bytes));
    if (out_of_window > (uint64_t{1} << 62)) {
      return Status::InvalidArgument(
          "implausible snapshot out-of-window count");
    }
    server.out_of_window_dropped_ = static_cast<int64_t>(out_of_window);

    FR_ASSIGN_OR_RETURN(const uint64_t num_clients, GetVarint64(&bytes));
    FR_RETURN_NOT_OK(CheckPlausibleCount(num_clients, 3, bytes));
    server.clients_.Reserve(num_clients);
    server.client_levels_.reserve(num_clients);
    int64_t previous_id = 0;
    for (uint64_t c = 0; c < num_clients; ++c) {
      FR_ASSIGN_OR_RETURN(const uint64_t id_delta, GetVarint64(&bytes));
      FR_ASSIGN_OR_RETURN(const uint64_t raw_level, GetVarint64(&bytes));
      if (raw_level >= orders) {
        return Status::InvalidArgument("snapshot client level out of range");
      }
      if (estimator.direct() && raw_level != 0) {
        return Status::InvalidArgument(
            "direct-estimator snapshot registers a client above level 0");
      }
      const int64_t id = previous_id + ZigZagDecode(id_delta);
      const int level = static_cast<int>(raw_level);
      previous_id = id;
      if (server.clients_.Find(id) >= 0) {
        return Status::InvalidArgument("snapshot repeats a client id");
      }
      // Columns are populated directly (not via RegisterClientStrict):
      // level_counts_ came from the blob's own level section above.
      server.clients_.Insert(id);
      server.client_levels_.push_back(level);
      if (policy == DedupPolicy::kIdempotent) {
        FR_ASSIGN_OR_RETURN(Server::BoundaryBitmap bitmap,
                            DecodeBoundaryBitmap(server, level, &bytes));
        server.seen_boundaries_.push_back(std::move(bitmap));
      } else {
        FR_ASSIGN_OR_RETURN(const uint64_t last, GetVarint64(&bytes));
        if (last > raw_periods ||
            last % (uint64_t{1} << static_cast<uint64_t>(level)) != 0) {
          return Status::InvalidArgument(
              "snapshot last report time invalid for level");
        }
        server.last_report_time_.push_back(static_cast<int64_t>(last));
      }
    }
    if (!bytes.empty()) {
      return Status::InvalidArgument("trailing bytes after snapshot");
    }
    return server;
  }

  // Reads one client's (base_word, num_words, words) triplet and rebuilds
  // the in-memory invariants: the frontier is the highest set bit, the last
  // word is never zero, no bit exceeds the level's boundary count, and an
  // eviction watermark requires a bounded window. A client that never
  // reported decodes to an empty bitmap (base_word 0, frontier -1).
  static Result<Server::BoundaryBitmap> DecodeBoundaryBitmap(
      const Server& server, int level, std::string_view* bytes) {
    FR_ASSIGN_OR_RETURN(const uint64_t raw_base, GetVarint64(bytes));
    FR_ASSIGN_OR_RETURN(const uint64_t raw_words, GetVarint64(bytes));
    const auto full_words =
        static_cast<uint64_t>(server.BitmapWordsAtLevel(level));
    if (raw_base > full_words || raw_words > full_words ||
        raw_base + raw_words > full_words) {
      return Status::InvalidArgument("snapshot bitmap exceeds level size");
    }
    if (raw_base != 0 && !server.dedup_window_.bounded()) {
      return Status::InvalidArgument(
          "snapshot eviction watermark without a bounded window");
    }
    FR_RETURN_NOT_OK(CheckPlausibleCount(raw_words, 1, *bytes));
    Server::BoundaryBitmap bitmap;
    bitmap.base_word = static_cast<int64_t>(raw_base);
    bitmap.words.resize(raw_words);
    for (uint64_t w = 0; w < raw_words; ++w) {
      FR_ASSIGN_OR_RETURN(bitmap.words[w], GetVarint64(bytes));
    }
    if (bitmap.words.empty()) {
      if (raw_base != 0) {
        return Status::InvalidArgument(
            "snapshot bitmap watermark without live words");
      }
      return bitmap;
    }
    const uint64_t top = bitmap.words.back();
    if (top == 0) {
      // The live bitmap never keeps trailing zero words (a word is only
      // materialized to set a bit in it), so a canonical blob has none.
      return Status::InvalidArgument("snapshot bitmap trailing zero word");
    }
    bitmap.frontier =
        (bitmap.base_word +
         static_cast<int64_t>(bitmap.words.size()) - 1) * 64 +
        (std::bit_width(top) - 1);
    const int64_t boundaries = server.num_periods_ >> level;
    if (bitmap.frontier >= boundaries) {
      return Status::InvalidArgument(
          "snapshot bitmap bit beyond the level horizon");
    }
    return bitmap;
  }

  // Re-buckets decoded shards by client id; see ReshardServerStates.
  static Result<std::vector<Server>> Reshard(std::vector<Server> sources,
                                             int new_num_shards) {
    if (new_num_shards < 1) {
      return Status::InvalidArgument("need at least one target shard");
    }
    if (sources.empty()) {
      return Status::InvalidArgument("need at least one source shard");
    }
    const Server& first = sources.front();
    std::vector<Server> targets;
    targets.reserve(static_cast<size_t>(new_num_shards));
    for (int s = 0; s < new_num_shards; ++s) {
      FR_ASSIGN_OR_RETURN(
          Server target,
          Server::WithScales(first.num_periods_, first.level_scales_,
                             first.dedup_policy_, first.dedup_window_,
                             first.store_config_, first.estimator_spec_));
      targets.push_back(std::move(target));
    }
    const auto shards = static_cast<int64_t>(new_num_shards);
    for (Server& source : sources) {
      FR_RETURN_NOT_OK(targets[0].CheckMergeCompatible(source));
      // Interval sums are per-shard aggregates — they cannot be attributed
      // to clients, and no query ever looks at one shard alone, so parking
      // them all on shard 0 keeps every estimate bit-identical.
      targets[0].AddSums(source);
      targets[0].duplicates_dropped_ += source.duplicates_dropped_;
      targets[0].out_of_window_dropped_ += source.out_of_window_dropped_;
      const std::vector<int64_t>& source_ids = source.clients_.ids();
      for (size_t slot = 0; slot < source_ids.size(); ++slot) {
        const int64_t id = source_ids[slot];
        Server& target =
            targets[static_cast<size_t>(((id % shards) + shards) % shards)];
        FR_RETURN_NOT_OK(
            target.RegisterClientStrict(id, source.client_levels_[slot]));
        // RegisterClientStrict pushed a default column entry; overwrite it
        // with the source client's dedup state.
        if (source.dedup_policy_ == DedupPolicy::kIdempotent) {
          target.seen_boundaries_.back() =
              std::move(source.seen_boundaries_[slot]);
        } else {
          target.last_report_time_.back() = source.last_report_time_[slot];
        }
      }
    }
    return targets;
  }
};

std::string EncodeServerState(const Server& server) {
  return ServerStateCodec::Encode(server);
}

Result<Server> DecodeServerState(std::string_view bytes) {
  return ServerStateCodec::Decode(bytes);
}

Result<std::vector<Server>> ReshardServerStates(std::vector<Server> sources,
                                                int new_num_shards) {
  return ServerStateCodec::Reshard(std::move(sources), new_num_shards);
}

std::string EncodeAggregatorState(const std::vector<std::string>& shards,
                                  uint64_t epoch) {
  std::string out;
  AppendHeader(wire_internal::kKindAggregatorState, &out);
  PutVarint64(shards.size(), &out);
  PutVarint64(epoch, &out);
  for (const std::string& shard : shards) {
    PutVarint64(shard.size(), &out);
    out.append(shard);
  }
  AppendChecksum(&out);
  return out;
}

Result<AggregatorStateBlob> DecodeAggregatorState(std::string_view bytes) {
  FR_RETURN_NOT_OK(ConsumeChecksum(&bytes));
  FR_RETURN_NOT_OK(
      ConsumeHeader(wire_internal::kKindAggregatorState, &bytes));
  FR_ASSIGN_OR_RETURN(const uint64_t num_shards, GetVarint64(&bytes));
  FR_RETURN_NOT_OK(CheckPlausibleCount(num_shards, 1, bytes));
  AggregatorStateBlob blob;
  FR_ASSIGN_OR_RETURN(blob.epoch, GetVarint64(&bytes));
  blob.shards.reserve(num_shards);
  for (uint64_t s = 0; s < num_shards; ++s) {
    FR_ASSIGN_OR_RETURN(const uint64_t length, GetVarint64(&bytes));
    if (length > bytes.size()) {
      return Status::InvalidArgument("truncated shard state");
    }
    blob.shards.emplace_back(bytes.substr(0, length));
    bytes.remove_prefix(length);
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after checkpoint");
  }
  return blob;
}

std::string EncodeAggregatorDelta(const AggregatorDeltaBlob& delta) {
  FR_CHECK(delta.num_shards >= 1);
  FR_CHECK(delta.epoch >= 1 && delta.seq >= 1);
  std::string out;
  AppendHeader(wire_internal::kKindAggregatorDelta, &out);
  PutVarint64(static_cast<uint64_t>(delta.num_shards), &out);
  PutVarint64(delta.epoch, &out);
  PutVarint64(delta.seq, &out);
  PutVarint64(delta.shards.size(), &out);
  int64_t previous_index = -1;
  for (const ShardDelta& entry : delta.shards) {
    FR_CHECK(entry.shard_index > previous_index &&
             entry.shard_index < delta.num_shards);
    previous_index = entry.shard_index;
    PutVarint64(static_cast<uint64_t>(entry.shard_index), &out);
    PutVarint64(entry.state.size(), &out);
    out.append(entry.state);
  }
  AppendChecksum(&out);
  return out;
}

Result<AggregatorDeltaBlob> DecodeAggregatorDelta(std::string_view bytes) {
  FR_RETURN_NOT_OK(ConsumeChecksum(&bytes));
  FR_RETURN_NOT_OK(
      ConsumeHeader(wire_internal::kKindAggregatorDelta, &bytes));
  AggregatorDeltaBlob delta;
  FR_ASSIGN_OR_RETURN(const uint64_t num_shards, GetVarint64(&bytes));
  if (num_shards < 1 || num_shards > (uint64_t{1} << 40)) {
    return Status::InvalidArgument("implausible delta shard count");
  }
  delta.num_shards = static_cast<int64_t>(num_shards);
  FR_ASSIGN_OR_RETURN(delta.epoch, GetVarint64(&bytes));
  FR_ASSIGN_OR_RETURN(delta.seq, GetVarint64(&bytes));
  if (delta.epoch < 1 || delta.seq < 1) {
    // A delta always extends a full checkpoint (epoch >= 1) and sits at a
    // 1-based position behind it; zeros cannot come from the encoder.
    return Status::InvalidArgument("delta checkpoint without a chain anchor");
  }
  FR_ASSIGN_OR_RETURN(const uint64_t num_entries, GetVarint64(&bytes));
  if (num_entries > num_shards) {
    return Status::InvalidArgument("delta lists more shards than exist");
  }
  FR_RETURN_NOT_OK(CheckPlausibleCount(num_entries, 2, bytes));
  delta.shards.reserve(num_entries);
  int64_t previous_index = -1;
  for (uint64_t e = 0; e < num_entries; ++e) {
    FR_ASSIGN_OR_RETURN(const uint64_t raw_index, GetVarint64(&bytes));
    if (raw_index >= num_shards ||
        static_cast<int64_t>(raw_index) <= previous_index) {
      return Status::InvalidArgument("delta shard index out of order");
    }
    previous_index = static_cast<int64_t>(raw_index);
    FR_ASSIGN_OR_RETURN(const uint64_t length, GetVarint64(&bytes));
    if (length > bytes.size()) {
      return Status::InvalidArgument("truncated delta shard state");
    }
    delta.shards.push_back(ShardDelta{static_cast<int64_t>(raw_index),
                                      std::string(bytes.substr(0, length))});
    bytes.remove_prefix(length);
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after delta checkpoint");
  }
  return delta;
}

}  // namespace futurerand::core
