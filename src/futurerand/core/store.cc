#include "futurerand/core/store.h"

#include <cstdio>

#include "futurerand/common/macros.h"
#include "futurerand/common/math.h"
#include "futurerand/core/dense_store.h"
#include "futurerand/core/sketch_store.h"

namespace futurerand::core {

const char* StoreKindToString(StoreKind kind) {
  switch (kind) {
    case StoreKind::kDense:
      return "dense";
    case StoreKind::kSketch:
      return "sketch";
  }
  return "unknown";
}

Result<StoreKind> ParseStoreKind(const std::string& name) {
  if (name == "dense") {
    return StoreKind::kDense;
  }
  if (name == "sketch") {
    return StoreKind::kSketch;
  }
  return Status::InvalidArgument("unknown store kind (want dense|sketch)");
}

Status StoreConfig::Validate() const {
  if (sketch_rows < 1 || sketch_rows > SketchStore::kMaxRows) {
    return Status::InvalidArgument("sketch rows must lie in [1, 64]");
  }
  if (sketch_width < SketchStore::kMinWidth ||
      sketch_width > SketchStore::kMaxWidth ||
      !IsPowerOfTwo(static_cast<uint64_t>(sketch_width))) {
    return Status::InvalidArgument(
        "sketch width must be a power of two in [8, 2^30]");
  }
  return Status::OK();
}

StoreConfig StoreConfig::Canonical() const {
  if (kind == StoreKind::kDense) {
    return Dense();
  }
  return *this;
}

std::string StoreConfig::ToString() const {
  if (kind == StoreKind::kDense) {
    return "StoreConfig{dense}";
  }
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "StoreConfig{sketch rows=%d width=%lld seed=%llu}",
                static_cast<int>(sketch_rows),
                static_cast<long long>(sketch_width),
                static_cast<unsigned long long>(sketch_seed));
  return buffer;
}

std::unique_ptr<AggregateStore> MakeAggregateStore(const StoreConfig& config,
                                                   int64_t num_periods) {
  FR_CHECK_MSG(config.Validate().ok(), "invalid StoreConfig");
  FR_CHECK_MSG(num_periods >= 1 &&
                   IsPowerOfTwo(static_cast<uint64_t>(num_periods)),
               "domain size must be a power of two");
  if (config.kind == StoreKind::kSketch) {
    return std::make_unique<SketchStore>(num_periods, config);
  }
  return std::make_unique<DenseStore>(num_periods);
}

}  // namespace futurerand::core
