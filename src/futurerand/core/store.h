// Pluggable per-shard aggregate storage.
//
// The server's only aggregate state is one signed counter per dyadic
// interval (the raw sum of +/-1 reports). AggregateStore abstracts how
// those counters are laid out, so a shard can hold them either exactly
// (DenseStore, core/dense_store.h: the contiguous DyadicTree arena, O(d)
// memory, the default and the paper-faithful choice) or approximately
// (SketchStore, core/sketch_store.h: a count-sketch of R rows x W buckets
// per dyadic level, O(levels * R * W) memory, for domains where O(d) per
// shard is unaffordable).
//
// The interface is deliberately the minimal hot-path surface: point add,
// point read, element-wise merge. Everything above it — debiasing scales,
// dedup, sharding, checkpoint framing — is store-agnostic. Reads return
// int64_t under both backends (the dense value is exact; the sketch value
// is the integer median-of-rows estimate), so Server's estimate math is
// byte-for-byte unchanged under the default backend.
//
// Which backend a Server uses is part of its identity: merges, restores
// and resharding require identical StoreConfigs, and the checkpoint kind
// records the backend (docs/FORMATS.md kinds 3 and 8).

#ifndef FUTURERAND_CORE_STORE_H_
#define FUTURERAND_CORE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "futurerand/common/result.h"

namespace futurerand::core {

/// The aggregate-storage backends a shard can be built on.
enum class StoreKind {
  /// One exact counter per dyadic interval (2d-1 total). Default.
  kDense,
  /// Count-sketch rows per level for levels too wide to store exactly;
  /// narrow levels stay exact. Estimates gain a bounded additive error
  /// (see docs/ARCHITECTURE.md "Storage backends").
  kSketch,
};

const char* StoreKindToString(StoreKind kind);

/// Parses "dense" / "sketch" (the --store flag spelling).
Result<StoreKind> ParseStoreKind(const std::string& name);

/// Selects and parameterizes a shard's aggregate store. The sketch_*
/// fields only matter under kSketch; Canonical() zeroes them back to the
/// defaults under kDense so configs compare by meaning, not by ignored
/// fields.
struct StoreConfig {
  StoreKind kind = StoreKind::kDense;

  /// Count-sketch depth R: independent (bucket, sign) hash rows per
  /// sketched level. The estimate is the lower median over rows, so odd
  /// values waste nothing; must be in [1, 64].
  int32_t sketch_rows = 5;

  /// Count-sketch width W: buckets per row. Must be a power of two in
  /// [8, 2^30]; the per-node additive error of a sketched level shrinks
  /// as 1/sqrt(W).
  int64_t sketch_width = int64_t{1} << 16;

  /// Seeds the per-(level, row) hash functions. Part of the store's
  /// identity: two sketches merge meaningfully only if they hash
  /// identically, so merges/restores require equal seeds.
  uint64_t sketch_seed = 0x6672736b65746368ULL;  // "frsketch"

  static StoreConfig Dense() { return StoreConfig{}; }
  static StoreConfig Sketch(int32_t rows, int64_t width, uint64_t seed) {
    return StoreConfig{StoreKind::kSketch, rows, width, seed};
  }

  /// OK iff the sketch parameters are in range (checked regardless of
  /// kind, so a config that would be invalid after a kind flip never
  /// circulates). Construction-time: Server::WithScales rejects a bad
  /// config before any state exists, and the snapshot decoder rejects a
  /// blob carrying one.
  Status Validate() const;

  /// This config with ignored fields reset: under kDense the sketch_*
  /// fields revert to their defaults. Servers store the canonical form,
  /// so two dense servers always agree on their StoreConfig.
  StoreConfig Canonical() const;

  std::string ToString() const;

  friend bool operator==(const StoreConfig&, const StoreConfig&) = default;
};

/// One shard's per-interval aggregate counters, behind a virtual point
/// add/read surface. Implementations are not thread-safe (the owning
/// Server/shard serializes access) and are only merged with stores
/// created from an equal StoreConfig and domain size.
class AggregateStore {
 public:
  virtual ~AggregateStore() = default;

  AggregateStore(const AggregateStore&) = delete;
  AggregateStore& operator=(const AggregateStore&) = delete;

  virtual StoreKind kind() const = 0;

  /// The domain size d this store was built for.
  int64_t domain_size() const { return domain_size_; }

  /// Adds `delta` to the counter of interval I_{order, index}
  /// (1-based index, as everywhere in the dyadic layer).
  virtual void Add(int order, int64_t index, int64_t delta) = 0;

  /// The counter of I_{order, index}: exact under kDense, the
  /// median-of-rows estimate under kSketch.
  virtual int64_t Value(int order, int64_t index) const = 0;

  /// Element-wise accumulate of `other`'s cells into this store.
  /// FR_CHECKs that the stores are structurally identical (same concrete
  /// kind, domain, and sketch parameters) — callers gate on StoreConfig
  /// equality first. Cell addition commutes, so any merge order over any
  /// sharding yields bit-identical cells.
  virtual void AccumulateCells(const AggregateStore& other) = 0;

  /// Estimated heap footprint of the cell storage in bytes.
  virtual int64_t ApproxMemoryBytes() const = 0;

 protected:
  explicit AggregateStore(int64_t domain_size) : domain_size_(domain_size) {}

 private:
  int64_t domain_size_;
};

/// Builds the store `config` describes over a domain of `num_periods`
/// (callers have validated both; FR_CHECKed here).
std::unique_ptr<AggregateStore> MakeAggregateStore(const StoreConfig& config,
                                                   int64_t num_periods);

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_STORE_H_
