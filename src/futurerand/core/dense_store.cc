#include "futurerand/core/dense_store.h"

#include "futurerand/common/macros.h"

namespace futurerand::core {

DenseStore::DenseStore(int64_t num_periods) : AggregateStore(num_periods),
                                              tree_(num_periods) {}

void DenseStore::AccumulateCells(const AggregateStore& other) {
  FR_CHECK_MSG(other.kind() == StoreKind::kDense &&
                   other.domain_size() == domain_size(),
               "accumulating structurally different stores");
  const auto& dense = static_cast<const DenseStore&>(other);
  const std::span<int64_t> mine = tree_.nodes();
  const std::span<const int64_t> theirs = dense.tree_.nodes();
  for (size_t i = 0; i < mine.size(); ++i) {
    mine[i] += theirs[i];
  }
}

int64_t DenseStore::ApproxMemoryBytes() const {
  return (2 * domain_size() - 1) * static_cast<int64_t>(sizeof(int64_t));
}

}  // namespace futurerand::core
