// Protocol-level configuration shared by clients and the server.

#ifndef FUTURERAND_CORE_CONFIG_H_
#define FUTURERAND_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "futurerand/common/status.h"
#include "futurerand/core/store.h"
#include "futurerand/randomizer/randomizer.h"

namespace futurerand::core {

/// Parameters of one longitudinal tracking deployment (Problem 2.3).
struct ProtocolConfig {
  /// Number of time periods d; must be a power of two (Section 2).
  int64_t num_periods = 0;

  /// Sparsity budget k: each user's Boolean value changes at most k times
  /// across the d periods (counting the change from the convention
  /// st_u[0] = 0 to st_u[1], per Definition 3.1).
  int64_t max_changes = 0;

  /// Local privacy budget; the analysis covers 0 < epsilon <= 1.
  double epsilon = 0.0;

  /// Which sequence randomizer clients use (Section 4.2 / Section 5, or
  /// one of the memoized longitudinal kinds of randomizer/longitudinal.h).
  rand::RandomizerKind randomizer = rand::RandomizerKind::kFutureRand;

  /// The eps_1/eps_perm budget split of the longitudinal kinds (kLGrr /
  /// kLOlh / kLoloha): each single report is alpha * epsilon-DP while the
  /// whole sequence stays epsilon-DP. Must lie in (0, 1); ignored by the
  /// dyadic kinds.
  double longitudinal_alpha = 0.5;

  /// Extension beyond the paper (default off = paper-faithful): a client at
  /// level h emits only L = d/2^h reports, so its non-zero partial sums are
  /// bounded by min(k, L); parameterizing its randomizer with that smaller
  /// budget yields a larger c_gap at high levels with the identical privacy
  /// certificate. The server compensates with per-level debiasing scales.
  bool adapt_support_per_level = false;

  /// The sparsity budget used by a client at level h: min(k, d/2^h) when
  /// adapt_support_per_level is set, otherwise k.
  int64_t SupportAtLevel(int level) const;

  /// Extension beyond the paper (default off): after all reports are in,
  /// post-process the per-interval estimates with GLS tree consistency
  /// (see core/consistency.h) before forming prefix sums. Offline mode
  /// only; pure post-processing, so privacy is unchanged.
  bool consistent_estimation = false;

  /// Which aggregate backend server shards hold their per-interval
  /// counters in (core/store.h). Dense by default — the paper-faithful,
  /// exact choice; kSketch trades a bounded additive estimation error for
  /// O(levels * rows * width) memory per shard instead of O(d), making
  /// domains of hundreds of millions of periods feasible.
  StoreConfig store;

  /// OK iff num_periods is a power of two, 1 <= max_changes <= num_periods,
  /// 0 < epsilon <= 1, and the store config is valid.
  Status Validate() const;

  /// 1 + log2(d): the number of dyadic orders, and the support size of the
  /// level distribution h_u.
  int num_orders() const;

  /// Human-readable parameter summary.
  std::string ToString() const;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_CONFIG_H_
