// The server-side algorithm A_svr (Algorithm 2).
//
// The server partitions clients by their reported level h_u, accumulates the
// raw +/-1 reports per dyadic interval, and answers online queries
//   a_hat[t] = sum_{I_{h,j} in C(t)} scale_h * raw_sum(I_{h,j})
// where scale_h = (1 + log d) / c_gap(h) debiases the level-sampling and the
// randomizer (Observation 4.3 / Equation 12). In paper-faithful mode
// c_gap(h) is the same for every level.
//
// State persistence (checkpoint/restore) lives in core/snapshot.h; the byte
// layout of every serialized form is specified in docs/FORMATS.md.

#ifndef FUTURERAND_CORE_SERVER_H_
#define FUTURERAND_CORE_SERVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "futurerand/common/result.h"
#include "futurerand/core/client_index.h"
#include "futurerand/core/config.h"
#include "futurerand/core/store.h"
#include "futurerand/core/wire.h"

namespace futurerand::core {

/// How the server treats a report it has already seen. The paper assumes
/// exactly-once, in-order transport; a deployed collector sees at-least-once
/// delivery with retries, so duplicates and reordering are normal.
enum class DedupPolicy {
  /// Paper-faithful: a duplicate or non-monotone report time is an error.
  /// Cheapest (one int64 per client) but only correct behind an
  /// exactly-once, in-order transport.
  kStrict,
  /// Idempotent ingest: a level-h client reports at most once per dyadic
  /// boundary, so a per-client bitmap over its d/2^h boundaries detects
  /// retransmissions exactly. Duplicates are dropped (counted, not errors)
  /// and reports may arrive in any order, making at-least-once delivery
  /// bit-identical to exactly-once. Re-registering a client with its
  /// original level is likewise a counted no-op.
  kIdempotent,
};

const char* DedupPolicyToString(DedupPolicy policy);

/// Bounds the memory of the kIdempotent boundary bitmaps for year-scale
/// streams. Unbounded (the default), a level-h client's bitmap grows to
/// d/2^h bits and never shrinks; bounded, the server keeps exact seen-bits
/// only for a trailing window behind each client's newest boundary and
/// evicts everything older.
///
/// Semantics: a report whose boundary is inside the retained window behaves
/// bit-identically to the unbounded policy. A report older than the evicted
/// horizon is dropped and counted (out_of_window_dropped()) — the server can
/// no longer tell a retransmission from a first delivery, so it refuses to
/// guess. Size the window to the transport's maximum reorder/retry horizon
/// (see docs/ARCHITECTURE.md "Operations").
struct DedupWindowPolicy {
  /// Boundaries of exact dedup memory retained behind each client's newest
  /// boundary. 0 = unbounded (never evict, never drop). Eviction works in
  /// whole 64-boundary words, so up to 63 extra boundaries may be
  /// retained. Must not exceed the server's num_periods (checked at
  /// construction): no level has more than d boundaries, so a larger
  /// window would just be a non-canonical spelling of unbounded.
  int64_t window_boundaries = 0;

  /// True iff eviction is enabled.
  bool bounded() const { return window_boundaries > 0; }

  /// OK iff the window is non-negative and, when bounded, the policy is
  /// kIdempotent (kStrict keeps no bitmaps to evict).
  Status Validate(DedupPolicy policy) const;

  friend bool operator==(const DedupWindowPolicy&,
                         const DedupWindowPolicy&) = default;
};

/// How a server turns raw interval sums into estimates.
struct EstimatorSpec {
  enum class Mode {
    /// Algorithm 2: sum scale_h * raw_sum over the dyadic decomposition of
    /// the prefix [1..t]. The paper's estimator; the default.
    kDyadic = 0,
    /// The longitudinal kinds (kLGrr / kLOlh / kLoloha): every client sits
    /// at level 0 and reports its perturbed value each tick, so
    ///   a_hat[t] = scale_0 * (raw_sum(0, t) - n_0 * direct_offset)
    /// with scale_0 = 1/(u1 - u0), direct_offset = u0 and n_0 the
    /// registered level-0 client count. No dyadic tree is consulted.
    kDirect = 1,
  };

  Mode mode = Mode::kDyadic;
  /// kDirect only: the value-0 report mean u0 in (-1, 1). Must be 0 under
  /// kDyadic so snapshots stay canonical.
  double direct_offset = 0.0;

  bool direct() const { return mode == Mode::kDirect; }

  /// OK iff the offset is finite, inside (-1, 1), and zero under kDyadic.
  Status Validate() const;

  friend bool operator==(const EstimatorSpec&,
                         const EstimatorSpec&) = default;
};

/// The exact per-level debiasing scales of Algorithm 2 line 5 for the
/// protocol configuration: (1 + log d) / c_gap(h), where c_gap(h) matches
/// the randomizer the level-h clients instantiate. Shared by
/// Server::ForProtocol and ShardedAggregator::ForProtocol. For the
/// longitudinal kinds the vector is [1/(u1 - u0), 0, 0, ...]: only level 0
/// is populated and the level-sampling factor (1 + log d) does not apply
/// (pair with ProtocolEstimatorSpec).
Result<std::vector<double>> ProtocolLevelScales(const ProtocolConfig& config);

/// The estimator mode the protocol configuration requires: kDirect with
/// offset u0 for the longitudinal kinds, kDyadic otherwise.
Result<EstimatorSpec> ProtocolEstimatorSpec(const ProtocolConfig& config);

/// Aggregates client reports and produces the online estimates a_hat[t].
///
/// Move-only. NOT thread-safe: no member may be called concurrently with
/// any other. Concurrent service use goes through the thread-safe
/// ShardedAggregator (aggregator.h), which shards by client id and takes a
/// mutex per shard. All mutators validate before mutating and return a
/// Status; on error the server is unchanged unless noted otherwise.
class Server {
 public:
  /// Builds a server for the protocol configuration; computes the exact
  /// per-level debiasing scales from the randomizer kind, and holds its
  /// aggregate counters in the store config.store selects (dense by
  /// default; see core/store.h for the sketch backend). Errors on an
  /// invalid config — including out-of-range sketch parameters, rejected
  /// here at construction rather than when a snapshot is decoded — or an
  /// inconsistent (policy, window) pair.
  static Result<Server> ForProtocol(const ProtocolConfig& config,
                                    DedupPolicy policy = DedupPolicy::kStrict,
                                    DedupWindowPolicy window = {});

  /// Builds a server with externally supplied per-level report scales
  /// (scales[h] multiplies each raw report of a level-h client). Used by
  /// baseline protocols whose estimators carry extra factors. `store`
  /// injects the aggregate backend (default dense); the config is
  /// validated here, so invalid sketch parameters (width not a power of
  /// two, rows out of [1, 64]) fail at construction time. Errors unless
  /// num_periods is a power of two with one scale per dyadic order and the
  /// (policy, window) pair is consistent.
  /// `estimator` selects how queries read the sums (default: the paper's
  /// dyadic decomposition; kDirect for the longitudinal kinds, which also
  /// restricts registrations to level 0).
  static Result<Server> WithScales(int64_t num_periods,
                                   std::vector<double> level_scales,
                                   DedupPolicy policy = DedupPolicy::kStrict,
                                   DedupWindowPolicy window = {},
                                   StoreConfig store = {},
                                   EstimatorSpec estimator = {});

  Server(Server&&) = default;
  Server& operator=(Server&&) = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a client with its sampled level h in [0..log d]. Errors on
  /// out-of-range levels. A duplicate id is an error under kStrict; under
  /// kIdempotent a re-registration with the original level is a counted
  /// no-op (a different level is still an error).
  Status RegisterClient(int64_t client_id, int level);

  /// Ingests the report a level-h client emitted at time t (a multiple of
  /// 2^h). Under kStrict, t must be strictly later than the client's
  /// previous report; under kIdempotent, reports arrive in any order, a
  /// boundary already seen is dropped silently (duplicates_dropped()), and
  /// — with a bounded window — a boundary older than the client's evicted
  /// horizon is dropped silently too (out_of_window_dropped()). Errors on
  /// unregistered ids, out-of-range or misaligned times, and values other
  /// than -1/+1, all before any state changes.
  Status SubmitReport(int64_t client_id, int64_t time, int8_t report);

  /// Batch ingest: applies batch[i] in order with exactly SubmitReport's
  /// per-record semantics, stopping at the first error (records before it
  /// stay applied, as if submitted one by one). Within a run of records
  /// sharing a report time — the common case, since a fleet tick emits one
  /// batch per period — the per-level aggregate updates are accumulated in
  /// a small per-order buffer and flushed to the interval tree once per
  /// (level, time), turning d tree walks into one. `*accepted` (optional)
  /// receives the number of records consumed without error, including
  /// dropped duplicates.
  Status SubmitReports(std::span<const ReportMessage> batch,
                       int64_t* accepted = nullptr);

  /// SubmitReports over a sub-sequence: applies batch[indices[i]] in index
  /// order. Lets a sharded ingest route one decoded batch to many servers
  /// without materializing per-shard copies.
  Status SubmitReports(std::span<const ReportMessage> batch,
                       std::span<const size_t> indices,
                       int64_t* accepted = nullptr);

  /// The online estimate a_hat[t] (Algorithm 2 line 6), valid as soon as
  /// every report for time <= t has been submitted. Requires 1 <= t <= d.
  Result<double> EstimateAt(int64_t t) const;

  /// Estimates for every t in [1..d].
  Result<std::vector<double>> EstimateAll() const;

  /// Offline-mode estimates with GLS consistency post-processing (see
  /// consistency.h): every dyadic interval's estimate is refined using the
  /// redundant estimates of its ancestors/descendants before the prefix
  /// sums are formed. Free under DP (pure post-processing); strictly
  /// reduces variance. Requires all reports to have been submitted —
  /// hence "offline": unlike EstimateAt, later reports change earlier
  /// answers.
  Result<std::vector<double>> EstimateAllConsistent() const;

  /// Estimates the net population change over the window [l..r]
  /// (1 <= l <= r <= d), i.e. a[r] - a[l-1]: how many more users hold 1 at
  /// the end of the window than just before it. Uses the minimal dyadic
  /// decomposition of [l..r] directly — at most 2*ceil(log2(r-l+2)) noisy
  /// terms instead of the up-to-2*(1+log d) terms of
  /// EstimateAt(r) - EstimateAt(l-1), so short windows are strictly less
  /// noisy. Valid once all reports for times <= r are in.
  Result<double> EstimateWindowDelta(int64_t l, int64_t r) const;

  /// Merges the accumulators of `other` (same shape, scales, policies) into
  /// this server; client registrations and dedup state are combined. Errors
  /// if shapes/policies mismatch or the client populations overlap (merged
  /// shards must partition clients). On error this server may have absorbed
  /// a prefix of `other`'s clients — merge into a scratch server when that
  /// matters.
  Status Merge(const Server& other);

  /// Merges only the aggregate state of `other` — interval sums and
  /// per-level client counts — skipping the per-client registration maps.
  /// The result answers every Estimate* query identically to a full Merge
  /// but must not ingest further reports (it does not know `other`'s
  /// clients). Lets a read-only query snapshot over sharded servers refresh
  /// in O(d) per shard instead of O(clients).
  Status MergeAggregatesOnly(const Server& other);

  int64_t num_periods() const { return num_periods_; }
  int64_t num_clients() const { return clients_.size(); }

  /// The aggregate-store configuration this server was built with, in
  /// canonical form. Part of the server's identity: Merge, restore and
  /// resharding require equal store configs.
  const StoreConfig& store_config() const { return store_config_; }

  /// Number of registered clients at level h. FR_CHECKs the range.
  int64_t ClientCountAtLevel(int level) const;

  /// The debiasing scale applied to level-h reports. FR_CHECKs the range.
  double ScaleAtLevel(int level) const;

  /// All per-level debiasing scales, indexed by order h.
  const std::vector<double>& level_scales() const { return level_scales_; }

  /// The estimator this server answers queries with. Part of the server's
  /// identity like the scales: Merge, restore and resharding require equal
  /// estimator specs.
  const EstimatorSpec& estimator() const { return estimator_spec_; }

  DedupPolicy dedup_policy() const { return dedup_policy_; }

  /// The eviction policy this server was built with (inert under kStrict).
  const DedupWindowPolicy& dedup_window() const { return dedup_window_; }

  /// Retransmissions absorbed under kIdempotent: duplicate reports dropped
  /// plus same-level re-registrations ignored. Always 0 under kStrict.
  int64_t duplicates_dropped() const { return duplicates_dropped_; }

  /// Reports dropped because their boundary was older than the client's
  /// evicted dedup horizon. Always 0 under an unbounded window.
  int64_t out_of_window_dropped() const { return out_of_window_dropped_; }

  /// Estimated heap footprint of the server's state in bytes: interval
  /// sums, registration maps, and dedup bookkeeping (watermarks or bitmap
  /// words). An accounting estimate (container overhead is approximated),
  /// monotone in the true footprint — the number to watch when sizing a
  /// DedupWindowPolicy.
  int64_t ApproxMemoryBytes() const;

 private:
  friend struct ServerStateCodec;  // core/snapshot.cc: checkpoint wire format

  /// Dedup state of one kIdempotent client: a bitmap over its dyadic
  /// boundaries, materialized lazily (words appear as the client's stream
  /// advances) and evicted from the front under a bounded window. Bit b of
  /// the logical bitmap lives at words[b/64 - base_word] once materialized;
  /// everything below 64*base_word has been evicted.
  struct BoundaryBitmap {
    int64_t base_word = 0;   // first still-materialized 64-boundary word
    int64_t frontier = -1;   // highest boundary seen; -1 = none yet
    std::vector<uint64_t> words;
  };

  Server(int64_t num_periods, std::vector<double> level_scales,
         DedupPolicy policy, DedupWindowPolicy window, StoreConfig store,
         EstimatorSpec estimator);

  Status CheckMergeCompatible(const Server& other) const;
  void AddSums(const Server& other);
  Status RegisterClientStrict(int64_t client_id, int level);

  /// What SubmitReport should do with a checked record.
  enum class ReportAction {
    kApply,   // add the report to the interval sums
    kAbsorb,  // counted drop (duplicate / out-of-window); sums untouched
  };

  /// All of SubmitReport except the aggregate update, in the exact check
  /// order of the scalar path: value, registration, range, alignment,
  /// dedup. On OK, *level_out is the client's level and *action says
  /// whether the report lands in the sums; dedup state has been recorded.
  Status CheckAndRecordReport(int64_t client_id, int64_t time, int8_t report,
                              int* level_out, ReportAction* action);

  /// Shared body of both SubmitReports overloads: applies
  /// batch[indices ? indices[i] : i] for i in [0..count).
  Status IngestRecords(std::span<const ReportMessage> batch,
                       const size_t* indices, size_t count,
                       int64_t* accepted);

  /// Words of a full kIdempotent boundary bitmap for a level-h client:
  /// one bit per multiple of 2^h in [1..d]. The upper bound on any
  /// BoundaryBitmap's base_word + words.size().
  int64_t BitmapWordsAtLevel(int level) const;

  /// Evicts whole words that fell behind the window ending at `frontier`.
  /// Called before the frontier bit is materialized, so a frontier jump
  /// never allocates words that would be evicted right away.
  void EvictBehindWindow(BoundaryBitmap* bitmap, int64_t frontier) const;

  DedupPolicy dedup_policy_;
  DedupWindowPolicy dedup_window_;
  std::vector<double> level_scales_;
  int64_t num_periods_;
  StoreConfig store_config_;  // canonical form
  EstimatorSpec estimator_spec_;
  // Raw sum of +/-1 reports per interval, behind the pluggable backend
  // (exact counters under kDense, count-sketch rows under kSketch).
  std::unique_ptr<AggregateStore> sums_;

  // Per-client state, columnar: clients_ maps id -> dense slot, and the
  // vectors below are indexed by slot (only the policy's column is
  // populated). One flat-hash probe plus contiguous column loads per
  // report, instead of two chained unordered_map lookups.
  ClientIndex clients_;
  std::vector<int32_t> client_levels_;  // sampled order h per slot
  // kStrict: the client's last accepted report time (monotonicity check);
  // 0 = never reported.
  std::vector<int64_t> last_report_time_;
  // kIdempotent: the windowed boundary bitmap per slot.
  std::vector<BoundaryBitmap> seen_boundaries_;

  std::vector<int64_t> level_counts_;
  int64_t duplicates_dropped_ = 0;
  int64_t out_of_window_dropped_ = 0;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_SERVER_H_
