// The server-side algorithm A_svr (Algorithm 2).
//
// The server partitions clients by their reported level h_u, accumulates the
// raw +/-1 reports per dyadic interval, and answers online queries
//   a_hat[t] = sum_{I_{h,j} in C(t)} scale_h * raw_sum(I_{h,j})
// where scale_h = (1 + log d) / c_gap(h) debiases the level-sampling and the
// randomizer (Observation 4.3 / Equation 12). In paper-faithful mode
// c_gap(h) is the same for every level.

#ifndef FUTURERAND_CORE_SERVER_H_
#define FUTURERAND_CORE_SERVER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/core/config.h"
#include "futurerand/dyadic/tree.h"

namespace futurerand::core {

/// The exact per-level debiasing scales of Algorithm 2 line 5 for the
/// protocol configuration: (1 + log d) / c_gap(h), where c_gap(h) matches
/// the randomizer the level-h clients instantiate. Shared by
/// Server::ForProtocol and ShardedAggregator::ForProtocol.
Result<std::vector<double>> ProtocolLevelScales(const ProtocolConfig& config);

/// Aggregates client reports and produces the online estimates a_hat[t].
/// Move-only. Report submission is not thread-safe; batch ingestion shards
/// by client id behind the thread-safe ShardedAggregator (aggregator.h).
class Server {
 public:
  /// Builds a server for the protocol configuration; computes the exact
  /// per-level debiasing scales from the randomizer kind.
  static Result<Server> ForProtocol(const ProtocolConfig& config);

  /// Builds a server with externally supplied per-level report scales
  /// (scales[h] multiplies each raw report of a level-h client). Used by
  /// baseline protocols whose estimators carry extra factors.
  static Result<Server> WithScales(int64_t num_periods,
                                   std::vector<double> level_scales);

  Server(Server&&) = default;
  Server& operator=(Server&&) = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a client with its sampled level h in [0..log d]. Errors on
  /// duplicate ids or out-of-range levels.
  Status RegisterClient(int64_t client_id, int level);

  /// Ingests the report a level-h client emitted at time t (which must be a
  /// multiple of 2^h, strictly later than the client's previous report).
  Status SubmitReport(int64_t client_id, int64_t time, int8_t report);

  /// The online estimate a_hat[t] (Algorithm 2 line 6), valid as soon as
  /// every report for time <= t has been submitted. Requires 1 <= t <= d.
  Result<double> EstimateAt(int64_t t) const;

  /// Estimates for every t in [1..d].
  Result<std::vector<double>> EstimateAll() const;

  /// Offline-mode estimates with GLS consistency post-processing (see
  /// consistency.h): every dyadic interval's estimate is refined using the
  /// redundant estimates of its ancestors/descendants before the prefix
  /// sums are formed. Free under DP (pure post-processing); strictly
  /// reduces variance. Requires all reports to have been submitted —
  /// hence "offline": unlike EstimateAt, later reports change earlier
  /// answers.
  Result<std::vector<double>> EstimateAllConsistent() const;

  /// Estimates the net population change over the window [l..r]
  /// (1 <= l <= r <= d), i.e. a[r] - a[l-1]: how many more users hold 1 at
  /// the end of the window than just before it. Uses the minimal dyadic
  /// decomposition of [l..r] directly — at most 2*ceil(log2(r-l+2)) noisy
  /// terms instead of the up-to-2*(1+log d) terms of
  /// EstimateAt(r) - EstimateAt(l-1), so short windows are strictly less
  /// noisy. Valid once all reports for times <= r are in.
  Result<double> EstimateWindowDelta(int64_t l, int64_t r) const;

  /// Merges the accumulators of `other` (same shape) into this server;
  /// client registrations are combined. Supports sharded ingestion.
  Status Merge(const Server& other);

  /// Merges only the aggregate state of `other` — interval sums and
  /// per-level client counts — skipping the per-client registration maps.
  /// The result answers every Estimate* query identically to a full Merge
  /// but must not ingest further reports (it does not know `other`'s
  /// clients). Lets a read-only query snapshot over sharded servers refresh
  /// in O(d) per shard instead of O(clients).
  Status MergeAggregatesOnly(const Server& other);

  int64_t num_periods() const { return sums_.domain_size(); }
  int64_t num_clients() const {
    return static_cast<int64_t>(client_levels_.size());
  }

  /// Number of registered clients at level h.
  int64_t ClientCountAtLevel(int level) const;

  /// The debiasing scale applied to level-h reports.
  double ScaleAtLevel(int level) const;

 private:
  Server(int64_t num_periods, std::vector<double> level_scales);

  Status CheckMergeCompatible(const Server& other) const;
  void AddSums(const Server& other);

  std::vector<double> level_scales_;
  dyadic::DyadicTree<int64_t> sums_;  // raw sum of +/-1 reports per interval
  std::unordered_map<int64_t, int> client_levels_;
  std::unordered_map<int64_t, int64_t> last_report_time_;
  std::vector<int64_t> level_counts_;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_SERVER_H_
