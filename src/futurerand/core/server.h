// The server-side algorithm A_svr (Algorithm 2).
//
// The server partitions clients by their reported level h_u, accumulates the
// raw +/-1 reports per dyadic interval, and answers online queries
//   a_hat[t] = sum_{I_{h,j} in C(t)} scale_h * raw_sum(I_{h,j})
// where scale_h = (1 + log d) / c_gap(h) debiases the level-sampling and the
// randomizer (Observation 4.3 / Equation 12). In paper-faithful mode
// c_gap(h) is the same for every level.

#ifndef FUTURERAND_CORE_SERVER_H_
#define FUTURERAND_CORE_SERVER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/core/config.h"
#include "futurerand/dyadic/tree.h"

namespace futurerand::core {

/// How the server treats a report it has already seen. The paper assumes
/// exactly-once, in-order transport; a deployed collector sees at-least-once
/// delivery with retries, so duplicates and reordering are normal.
enum class DedupPolicy {
  /// Paper-faithful: a duplicate or non-monotone report time is an error.
  /// Cheapest (one int64 per client) but only correct behind an
  /// exactly-once, in-order transport.
  kStrict,
  /// Idempotent ingest: a level-h client reports at most once per dyadic
  /// boundary, so a per-client bitmap over its d/2^h boundaries detects
  /// retransmissions exactly. Duplicates are dropped (counted, not errors)
  /// and reports may arrive in any order, making at-least-once delivery
  /// bit-identical to exactly-once. Re-registering a client with its
  /// original level is likewise a counted no-op.
  kIdempotent,
};

const char* DedupPolicyToString(DedupPolicy policy);

/// The exact per-level debiasing scales of Algorithm 2 line 5 for the
/// protocol configuration: (1 + log d) / c_gap(h), where c_gap(h) matches
/// the randomizer the level-h clients instantiate. Shared by
/// Server::ForProtocol and ShardedAggregator::ForProtocol.
Result<std::vector<double>> ProtocolLevelScales(const ProtocolConfig& config);

/// Aggregates client reports and produces the online estimates a_hat[t].
/// Move-only. Report submission is not thread-safe; batch ingestion shards
/// by client id behind the thread-safe ShardedAggregator (aggregator.h).
class Server {
 public:
  /// Builds a server for the protocol configuration; computes the exact
  /// per-level debiasing scales from the randomizer kind.
  static Result<Server> ForProtocol(const ProtocolConfig& config,
                                    DedupPolicy policy = DedupPolicy::kStrict);

  /// Builds a server with externally supplied per-level report scales
  /// (scales[h] multiplies each raw report of a level-h client). Used by
  /// baseline protocols whose estimators carry extra factors.
  static Result<Server> WithScales(int64_t num_periods,
                                   std::vector<double> level_scales,
                                   DedupPolicy policy = DedupPolicy::kStrict);

  Server(Server&&) = default;
  Server& operator=(Server&&) = default;
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Registers a client with its sampled level h in [0..log d]. Errors on
  /// out-of-range levels. A duplicate id is an error under kStrict; under
  /// kIdempotent a re-registration with the original level is a counted
  /// no-op (a different level is still an error).
  Status RegisterClient(int64_t client_id, int level);

  /// Ingests the report a level-h client emitted at time t (a multiple of
  /// 2^h). Under kStrict, t must be strictly later than the client's
  /// previous report; under kIdempotent, reports arrive in any order and a
  /// boundary already seen is dropped silently (see duplicates_dropped()).
  Status SubmitReport(int64_t client_id, int64_t time, int8_t report);

  /// The online estimate a_hat[t] (Algorithm 2 line 6), valid as soon as
  /// every report for time <= t has been submitted. Requires 1 <= t <= d.
  Result<double> EstimateAt(int64_t t) const;

  /// Estimates for every t in [1..d].
  Result<std::vector<double>> EstimateAll() const;

  /// Offline-mode estimates with GLS consistency post-processing (see
  /// consistency.h): every dyadic interval's estimate is refined using the
  /// redundant estimates of its ancestors/descendants before the prefix
  /// sums are formed. Free under DP (pure post-processing); strictly
  /// reduces variance. Requires all reports to have been submitted —
  /// hence "offline": unlike EstimateAt, later reports change earlier
  /// answers.
  Result<std::vector<double>> EstimateAllConsistent() const;

  /// Estimates the net population change over the window [l..r]
  /// (1 <= l <= r <= d), i.e. a[r] - a[l-1]: how many more users hold 1 at
  /// the end of the window than just before it. Uses the minimal dyadic
  /// decomposition of [l..r] directly — at most 2*ceil(log2(r-l+2)) noisy
  /// terms instead of the up-to-2*(1+log d) terms of
  /// EstimateAt(r) - EstimateAt(l-1), so short windows are strictly less
  /// noisy. Valid once all reports for times <= r are in.
  Result<double> EstimateWindowDelta(int64_t l, int64_t r) const;

  /// Merges the accumulators of `other` (same shape) into this server;
  /// client registrations are combined. Supports sharded ingestion.
  Status Merge(const Server& other);

  /// Merges only the aggregate state of `other` — interval sums and
  /// per-level client counts — skipping the per-client registration maps.
  /// The result answers every Estimate* query identically to a full Merge
  /// but must not ingest further reports (it does not know `other`'s
  /// clients). Lets a read-only query snapshot over sharded servers refresh
  /// in O(d) per shard instead of O(clients).
  Status MergeAggregatesOnly(const Server& other);

  int64_t num_periods() const { return sums_.domain_size(); }
  int64_t num_clients() const {
    return static_cast<int64_t>(client_levels_.size());
  }

  /// Number of registered clients at level h.
  int64_t ClientCountAtLevel(int level) const;

  /// The debiasing scale applied to level-h reports.
  double ScaleAtLevel(int level) const;

  /// All per-level debiasing scales, indexed by order h.
  const std::vector<double>& level_scales() const { return level_scales_; }

  DedupPolicy dedup_policy() const { return dedup_policy_; }

  /// Retransmissions absorbed under kIdempotent: duplicate reports dropped
  /// plus same-level re-registrations ignored. Always 0 under kStrict.
  int64_t duplicates_dropped() const { return duplicates_dropped_; }

 private:
  friend struct ServerStateCodec;  // core/snapshot.cc: checkpoint wire format

  Server(int64_t num_periods, std::vector<double> level_scales,
         DedupPolicy policy);

  Status CheckMergeCompatible(const Server& other) const;
  void AddSums(const Server& other);
  Status RegisterClientStrict(int64_t client_id, int level);

  /// Words of the kIdempotent boundary bitmap for a level-h client:
  /// one bit per multiple of 2^h in [1..d].
  int64_t BitmapWordsAtLevel(int level) const;

  DedupPolicy dedup_policy_;
  std::vector<double> level_scales_;
  dyadic::DyadicTree<int64_t> sums_;  // raw sum of +/-1 reports per interval
  std::unordered_map<int64_t, int> client_levels_;
  // kStrict: the client's last accepted report time (monotonicity check).
  std::unordered_map<int64_t, int64_t> last_report_time_;
  // kIdempotent: one bit per dyadic boundary the client has reported at.
  std::unordered_map<int64_t, std::vector<uint64_t>> seen_boundaries_;
  std::vector<int64_t> level_counts_;
  int64_t duplicates_dropped_ = 0;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_SERVER_H_
