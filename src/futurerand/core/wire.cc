#include "futurerand/core/wire.h"

#include <algorithm>

namespace futurerand::core {

namespace wire_internal {

void PutFixed64(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>(value & 0xff));
    value >>= 8;
  }
}

Result<uint64_t> GetFixed64(std::string_view* bytes) {
  if (bytes->size() < 8) {
    return Status::InvalidArgument("truncated fixed64");
  }
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<uint8_t>((*bytes)[static_cast<size_t>(i)]);
  }
  bytes->remove_prefix(8);
  return value;
}

void PutVarint64(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint64(std::string_view* bytes) {
  uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (bytes->empty()) {
      return Status::InvalidArgument("truncated varint");
    }
    const auto byte = static_cast<uint8_t>(bytes->front());
    bytes->remove_prefix(1);
    value |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return value;
    }
    shift += 7;
  }
  return Status::InvalidArgument("overlong varint");
}

uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^
         -static_cast<int64_t>(value & 1);
}

namespace {

constexpr char kMagic0 = 'F';
constexpr char kMagic1 = 'R';
constexpr char kMagic2 = 'W';

}  // namespace

void AppendHeader(char kind, std::string* out) {
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  out->push_back(kMagic2);
  out->push_back(KindWireVersion(kind));
  out->push_back(kind);
}

Result<char> CheckHeader(std::string_view bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("batch shorter than its header");
  }
  // Header failures are kDataLoss, not kInvalidArgument: at an ingest
  // boundary an unrecognizable frame means "garbled in flight" (or not
  // ours at all), and the retransmission loop keys off that code.
  if (bytes[0] != kMagic0 || bytes[1] != kMagic1 || bytes[2] != kMagic2) {
    return Status::DataLoss("bad magic");
  }
  const char version = bytes[3];
  if (version != kWireVersion1 && version != kWireVersion2) {
    return Status::DataLoss("unsupported wire version");
  }
  const char kind = bytes[4];
  if (kind < kKindRegistration || kind > kKindFleetLongState) {
    return Status::DataLoss("unknown batch kind");
  }
  if (version != KindWireVersion(kind)) {
    return Status::DataLoss("wire version does not frame this batch kind");
  }
  return kind;
}

Status ConsumeHeader(char expected_kind, std::string_view* bytes) {
  FR_ASSIGN_OR_RETURN(const char kind, CheckHeader(*bytes));
  if (kind != expected_kind) {
    return Status::InvalidArgument("unexpected batch kind");
  }
  bytes->remove_prefix(kHeaderSize);
  return Status::OK();
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void AppendChecksum(std::string* out) {
  PutFixed64(Fnv1a64(*out), out);
}

Status ConsumeChecksum(std::string_view* bytes) {
  if (bytes->size() < 8) {
    return Status::DataLoss("blob shorter than its checksum");
  }
  const std::string_view payload = bytes->substr(0, bytes->size() - 8);
  std::string_view trailer = bytes->substr(payload.size());
  FR_ASSIGN_OR_RETURN(const uint64_t stored, GetFixed64(&trailer));
  if (stored != Fnv1a64(payload)) {
    return Status::DataLoss("checksum mismatch: corrupted blob");
  }
  *bytes = payload;
  return Status::OK();
}

}  // namespace wire_internal

namespace {

using wire_internal::GetVarint64;
using wire_internal::PutVarint64;
using wire_internal::ZigZagDecode;
using wire_internal::ZigZagEncode;
using wire_internal::kKindRegistration;
using wire_internal::kKindRegistrationV2;
using wire_internal::kKindReport;
using wire_internal::kKindReportV2;

void AppendBatchHeader(char kind, size_t count, std::string* out) {
  wire_internal::AppendHeader(kind, out);
  PutVarint64(count, out);
}

// Strips a validated transport header whose kind must be the v1 or v2
// variant of one message type; for v2 the FNV-1a trailer is verified and
// removed FIRST, so no record of a corrupted batch is ever parsed. On
// success `*bytes` holds exactly the record payload (count varint first).
Status ConsumeTransportHeader(char v1_kind, char v2_kind,
                              std::string_view* bytes) {
  FR_ASSIGN_OR_RETURN(const char kind, wire_internal::CheckHeader(*bytes));
  if (kind != v1_kind && kind != v2_kind) {
    return Status::InvalidArgument("unexpected batch kind");
  }
  if (kind == v2_kind) {
    FR_RETURN_NOT_OK(wire_internal::ConsumeChecksum(bytes));
  }
  bytes->remove_prefix(wire_internal::kHeaderSize);
  return Status::OK();
}

}  // namespace

Result<WireBatchKind> PeekBatchKind(std::string_view bytes) {
  FR_ASSIGN_OR_RETURN(const char kind, wire_internal::CheckHeader(bytes));
  switch (kind) {
    case wire_internal::kKindRegistration:
      return WireBatchKind::kRegistration;
    case wire_internal::kKindReport:
      return WireBatchKind::kReport;
    case wire_internal::kKindServerState:
      return WireBatchKind::kServerState;
    case wire_internal::kKindAggregatorState:
      return WireBatchKind::kAggregatorState;
    case wire_internal::kKindAggregatorDelta:
      return WireBatchKind::kAggregatorDelta;
    case wire_internal::kKindRegistrationV2:
      return WireBatchKind::kRegistrationV2;
    case wire_internal::kKindReportV2:
      return WireBatchKind::kReportV2;
    case wire_internal::kKindServerStateSketch:
      return WireBatchKind::kServerStateSketch;
    case wire_internal::kKindFleetLongState:
      return WireBatchKind::kFleetLongState;
    default:
      return Status::DataLoss("unknown batch kind");
  }
}

std::string EncodeRegistrationBatch(
    const std::vector<RegistrationMessage>& batch, WireVersion version) {
  std::string out;
  AppendBatchHeader(version == WireVersion::kV2 ? kKindRegistrationV2
                                                : kKindRegistration,
                    batch.size(), &out);
  int64_t previous_id = 0;
  for (const RegistrationMessage& message : batch) {
    PutVarint64(ZigZagEncode(message.client_id - previous_id), &out);
    PutVarint64(static_cast<uint64_t>(message.level), &out);
    previous_id = message.client_id;
  }
  if (version == WireVersion::kV2) {
    wire_internal::AppendChecksum(&out);
  }
  return out;
}

Result<std::vector<RegistrationMessage>> DecodeRegistrationBatch(
    std::string_view bytes) {
  FR_RETURN_NOT_OK(
      ConsumeTransportHeader(kKindRegistration, kKindRegistrationV2, &bytes));
  FR_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&bytes));
  std::vector<RegistrationMessage> batch;
  // A record costs >= 2 bytes, so a count claiming more than the remaining
  // bytes allow is corrupt; clamping keeps the reserve proportional to the
  // input instead of trusting a (possibly bit-flipped) varint.
  batch.reserve(static_cast<size_t>(
      std::min<uint64_t>(count, bytes.size() / 2 + 1)));
  int64_t previous_id = 0;
  for (uint64_t i = 0; i < count; ++i) {
    FR_ASSIGN_OR_RETURN(uint64_t id_delta, GetVarint64(&bytes));
    FR_ASSIGN_OR_RETURN(uint64_t level, GetVarint64(&bytes));
    if (level > 62) {
      return Status::InvalidArgument("implausible level");
    }
    RegistrationMessage message;
    message.client_id = previous_id + ZigZagDecode(id_delta);
    message.level = static_cast<int>(level);
    previous_id = message.client_id;
    batch.push_back(message);
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after batch");
  }
  return batch;
}

Result<std::string> EncodeReportBatch(
    const std::vector<ReportMessage>& batch, WireVersion version) {
  std::string out;
  AppendBatchHeader(version == WireVersion::kV2 ? kKindReportV2
                                                : kKindReport,
                    batch.size(), &out);
  int64_t previous_id = 0;
  int64_t previous_time = 0;
  for (const ReportMessage& message : batch) {
    if (message.value != -1 && message.value != 1) {
      return Status::InvalidArgument("report values must be -1 or +1");
    }
    if (message.time < 1) {
      return Status::InvalidArgument("report times are 1-based");
    }
    PutVarint64(ZigZagEncode(message.client_id - previous_id), &out);
    // Pack the sign into the low bit of the zigzagged time delta.
    const uint64_t time_delta = ZigZagEncode(message.time - previous_time);
    PutVarint64(time_delta << 1 | (message.value == 1 ? 1u : 0u), &out);
    previous_id = message.client_id;
    previous_time = message.time;
  }
  if (version == WireVersion::kV2) {
    wire_internal::AppendChecksum(&out);
  }
  return out;
}

Result<std::vector<ReportMessage>> DecodeReportBatch(std::string_view bytes) {
  FR_RETURN_NOT_OK(ConsumeTransportHeader(kKindReport, kKindReportV2, &bytes));
  FR_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(&bytes));
  std::vector<ReportMessage> batch;
  batch.reserve(static_cast<size_t>(
      std::min<uint64_t>(count, bytes.size() / 2 + 1)));
  int64_t previous_id = 0;
  int64_t previous_time = 0;
  for (uint64_t i = 0; i < count; ++i) {
    FR_ASSIGN_OR_RETURN(uint64_t id_delta, GetVarint64(&bytes));
    FR_ASSIGN_OR_RETURN(uint64_t packed_time, GetVarint64(&bytes));
    ReportMessage message;
    message.client_id = previous_id + ZigZagDecode(id_delta);
    message.value = (packed_time & 1) ? int8_t{1} : int8_t{-1};
    message.time = previous_time + ZigZagDecode(packed_time >> 1);
    if (message.time < 1) {
      return Status::InvalidArgument("decoded non-positive report time");
    }
    previous_id = message.client_id;
    previous_time = message.time;
    batch.push_back(message);
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument("trailing bytes after batch");
  }
  return batch;
}

}  // namespace futurerand::core
