// Batch-first client engine: one ClientFleet owns the state of N clients
// and advances all of them one time period per call.
//
// The per-client state machine is identical to core::Client (Algorithm 1),
// but stored structure-of-arrays — levels, boundary states and randomizer
// instances live in parallel vectors — so one AdvanceTick call replaces N
// ObserveState calls, parallelizes over a ThreadPool, and emits a packed
// ReportBatch ready for wire encoding. Client u's randomness derives from
// Rng(base_seed).Fork(client_id) exactly like the per-client path, so a
// fleet is bit-identical to a loop of Client::ObserveState calls with the
// same seeds (pinned by tests/core/fleet_test.cc).

#ifndef FUTURERAND_CORE_FLEET_H_
#define FUTURERAND_CORE_FLEET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/common/threadpool.h"
#include "futurerand/core/config.h"
#include "futurerand/core/wire.h"
#include "futurerand/randomizer/randomizer.h"

namespace futurerand::core {

/// One tick's packed reports, in client-id order; feed straight into
/// EncodeReportBatch or ShardedAggregator::IngestReports.
using ReportBatch = std::vector<ReportMessage>;

/// N clients advancing in lockstep. Move-only. NOT thread-safe: AdvanceTick
/// is not re-entrant and no member may be called concurrently with it (one
/// fleet = one logical stream of time periods); the internal per-client
/// work is parallelized over the pool given at Create. Mutators validate
/// before mutating: a failed call leaves the fleet untouched.
class ClientFleet {
 public:
  /// Creates `num_clients` clients with ids first_client_id..+num_clients-1.
  /// Client with id c draws its level and randomizer noise from
  /// Rng(base_seed).Fork(c).NextUint64() — the same derivation the
  /// simulation runner uses for per-client seeding. `pool` (optional, not
  /// owned, must outlive the fleet) parallelizes creation and every
  /// AdvanceTick.
  static Result<ClientFleet> Create(const ProtocolConfig& config,
                                    int64_t num_clients, uint64_t base_seed,
                                    ThreadPool* pool = nullptr,
                                    int64_t first_client_id = 0);

  ClientFleet(ClientFleet&&) = default;
  ClientFleet& operator=(ClientFleet&&) = default;
  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  /// Registration records (client id, level) for every client, in id order;
  /// feed straight into EncodeRegistrationBatch or
  /// ShardedAggregator::IngestRegistrations. The reference stays valid for
  /// the fleet's lifetime (registrations never change after Create).
  const std::vector<RegistrationMessage>& registrations() const {
    return registrations_;
  }

  /// Advances the whole fleet one time period: states[i] is client i's
  /// Boolean value st[t] for the next period t. Appends the reports due at
  /// t (clients whose 2^h divides t), in client-id order, to `*batch` after
  /// clearing it. Errors — wrong span size, a state outside {0,1}, or more
  /// than d ticks — are returned before any client state changes, so a
  /// failed call leaves the fleet untouched.
  Status AdvanceTick(std::span<const int8_t> states, ReportBatch* batch);

  /// Convenience overload allocating a fresh batch.
  Result<ReportBatch> AdvanceTick(std::span<const int8_t> states);

  /// Equivalent input path taking discrete derivatives in {-1,0,+1}
  /// (Definition 3.1) instead of states. Errors if any implied state would
  /// leave {0,1}; like AdvanceTick, validation precedes any mutation.
  Status AdvanceTickDerivatives(std::span<const int8_t> derivatives,
                                ReportBatch* batch);

  /// Convenience overload allocating a fresh batch.
  Result<ReportBatch> AdvanceTickDerivatives(
      std::span<const int8_t> derivatives);

  /// The wire version the Encode* conveniences below emit. Defaults to
  /// kV2 (checksummed batches, so receivers detect in-flight corruption);
  /// set kV1 to emulate a legacy sender in a mixed fleet. Takes effect on
  /// the next Encode* call; decoded-batch APIs (AdvanceTick) are
  /// unaffected.
  void set_wire_version(WireVersion version) { wire_version_ = version; }
  WireVersion wire_version() const { return wire_version_; }

  /// EncodeRegistrationBatch(registrations(), wire_version()) — the bytes
  /// a deployment ships once before any report.
  std::string EncodeRegistrations() const;

  /// AdvanceTick + EncodeReportBatch in one call: advances the fleet one
  /// period and returns the tick's reports as wire bytes in
  /// wire_version() framing. Same error contract as AdvanceTick (a failed
  /// call leaves the fleet untouched).
  Result<std::string> AdvanceTickEncoded(std::span<const int8_t> states);

  /// Number of clients in the fleet.
  int64_t size() const { return static_cast<int64_t>(levels_.size()); }

  /// Time periods ingested so far (0 before the first AdvanceTick).
  int64_t current_time() const { return time_; }

  /// The id of client 0; client ids are contiguous from here.
  int64_t first_client_id() const { return first_client_id_; }

  /// The sampled order h of client `index` (0-based position, not id;
  /// bounds are the caller's responsibility).
  int level(int64_t index) const {
    return levels_[static_cast<size_t>(index)];
  }

  /// Reports emitted so far, summed over the fleet.
  int64_t reports_emitted() const { return reports_emitted_; }

  /// Value changes observed so far, summed over the fleet (st[0] = 0
  /// convention).
  int64_t changes_seen() const;

  /// Non-zero partial sums clamped by the randomizers' sparsity budget,
  /// summed over the fleet. 0 for contract-abiding inputs.
  int64_t support_overflow_count() const;

  /// Serializes the fleet's longitudinal memoization state — per-client RNG
  /// chain position, permanent hash seeds, memoized first-round values and
  /// integrated Boolean state, plus the fleet clock — into one checksummed
  /// kFleetLongState blob (FRW kind 9, docs/FORMATS.md §10). Only
  /// meaningful for the longitudinal randomizer kinds, whose privacy
  /// guarantee depends on the memoized value surviving restarts; errors
  /// with FailedPrecondition for the dyadic kinds.
  Result<std::string> EncodeLongitudinalState() const;

  /// Replaces the fleet's longitudinal state from an EncodeLongitudinalState
  /// blob. The fleet must have been created with the same shape (randomizer
  /// kind, num_periods, epsilon, alpha, fleet size, first client id) — the
  /// blob records all of them and a mismatch is an error. Ticking the
  /// restored fleet is bit-identical to ticking the captured one. On any
  /// error the fleet is untouched.
  Status RestoreLongitudinalState(std::string_view bytes);

 private:
  ClientFleet(const ProtocolConfig& config, ThreadPool* pool,
              int64_t first_client_id);

  // Shared implementation; `states` has been validated by the caller.
  void TickValidated(std::span<const int8_t> states, ReportBatch* batch);

  ProtocolConfig config_;
  ThreadPool* pool_;  // not owned; may be null
  WireVersion wire_version_ = WireVersion::kV2;
  int64_t first_client_id_;
  int64_t time_ = 0;
  int64_t reports_emitted_ = 0;
  int64_t changes_total_ = 0;

  // Structure-of-arrays client state, all indexed by client position.
  std::vector<int> levels_;
  std::vector<int8_t> current_states_;   // st[t], with st[0] = 0
  std::vector<int8_t> boundary_states_;  // st at the last dyadic boundary
  std::vector<std::unique_ptr<rand::SequenceRandomizer>> randomizers_;

  // Reporting cohorts, precomputed at Create: cohort_by_tz_[z] lists the
  // client positions (id order) whose level h satisfies h <= z — exactly
  // the clients due at any tick t with countr_zero(t) == z. Cohorts nest
  // (z grows => superset), so one lookup replaces N divisibility tests.
  std::vector<std::vector<int32_t>> cohort_by_tz_;

  std::vector<RegistrationMessage> registrations_;
  std::vector<int8_t> partial_scratch_;  // telescoped partial sums per tick
  std::vector<int8_t> state_scratch_;    // derivative -> state translation
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_FLEET_H_
