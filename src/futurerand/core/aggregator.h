// Batch-first, thread-safe aggregation service: a façade over K Server
// shards keyed by client id.
//
// Ingestion takes whole batches — decoded messages or raw wire bytes — and
// groups them per shard so each shard's mutex is taken once per batch;
// independent batches ingest concurrently from any number of threads. The
// query surface (EstimateAt / EstimateAll / EstimateAllConsistent /
// EstimateWindowDelta) answers from a lazily merged snapshot of the shards,
// rebuilt only when a dirty flag says ingestion happened since the last
// query. Estimates are bit-identical for any shard count: the shards hold
// integer report sums, and integer addition is order-independent.
//
// Durability is elastic (see docs/ARCHITECTURE.md "Operations"): full
// checkpoints serialize every shard, delta checkpoints only the shards
// dirtied since the previous one, and Restore() accepts either — including
// a full checkpoint from an aggregator with a different shard count, which
// is re-bucketed by client id on the way in.

#ifndef FUTURERAND_CORE_AGGREGATOR_H_
#define FUTURERAND_CORE_AGGREGATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/common/threadpool.h"
#include "futurerand/core/config.h"
#include "futurerand/core/server.h"
#include "futurerand/core/wire.h"

namespace futurerand::core {

/// How far a batch ingest got: filled (when requested) by every Ingest*
/// call, including failed ones, so callers can resume precisely. On an
/// error, each shard stops at its first bad record; `applied` counts the
/// records that mutated shard state across all shards. Under
/// DedupPolicy::kIdempotent the safe retry after any error is to resend the
/// whole batch — already-applied records land in `deduped` instead of
/// double-counting.
struct IngestOutcome {
  int64_t applied = 0;        // records that mutated shard state
  int64_t deduped = 0;        // retransmissions absorbed (kIdempotent only)
  int64_t out_of_window = 0;  // dropped behind an eviction watermark
};

/// What a Checkpoint() call serializes.
enum class CheckpointMode {
  /// Every shard, into one self-contained kAggregatorState blob. Starts a
  /// new checkpoint epoch that subsequent deltas chain to.
  kFull,
  /// Only the shards dirtied since the previous checkpoint (either kind),
  /// into a kAggregatorDelta blob. Errors (FailedPrecondition) unless a
  /// full checkpoint was taken or restored first — a delta needs a base.
  /// The chain advances when the delta is TAKEN, not when it is stored:
  /// if persisting the returned blob fails, take a kFull next (further
  /// deltas would leave an unrecoverable seq gap).
  kDelta,
};

/// Thread-safe sharded aggregator. Move-only (but moving is NOT thread-safe:
/// quiesce all other calls first). Safe for concurrent Ingest*, Estimate*,
/// Checkpoint and Restore calls; a query or checkpoint concurrent with an
/// in-flight ingest may see a prefix of that batch, but every call issued
/// after an ingest returns sees all of it.
class ShardedAggregator {
 public:
  /// Builds `num_shards` Server shards (>= 1) for the protocol
  /// configuration, with the exact per-level debiasing scales; every shard
  /// holds its counters in the aggregate store config.store selects (dense
  /// by default, count-sketch for huge domains — see core/store.h). With
  /// DedupPolicy::kIdempotent, at-least-once delivery (duplicates, retries,
  /// reordering) produces estimates bit-identical to exactly-once; `window`
  /// optionally bounds the per-client dedup memory (see DedupWindowPolicy).
  /// Invalid sketch parameters fail here, at construction time.
  static Result<ShardedAggregator> ForProtocol(
      const ProtocolConfig& config, int num_shards,
      DedupPolicy dedup = DedupPolicy::kStrict,
      DedupWindowPolicy window = {});

  /// Builds shards with externally supplied per-level report scales (for
  /// baseline protocols whose estimators carry extra factors, e.g. the
  /// Erlingsson server). `store` injects the per-shard aggregate backend
  /// (default dense), validated at construction time like Server::WithScales.
  /// `estimator` selects the query-time estimator every shard (and the
  /// merged snapshot) runs — kDirect for the longitudinal protocols.
  static Result<ShardedAggregator> WithScales(
      int64_t num_periods, std::vector<double> level_scales, int num_shards,
      DedupPolicy dedup = DedupPolicy::kStrict,
      DedupWindowPolicy window = {}, StoreConfig store = {},
      EstimatorSpec estimator = {});

  ShardedAggregator(ShardedAggregator&&) = default;
  ShardedAggregator& operator=(ShardedAggregator&&) = default;
  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Registers a batch of clients (id + sampled level). With a pool, shards
  /// ingest their slices concurrently. Batches are not atomic: on error,
  /// records before the offending one (per shard) stay applied and the
  /// first error (in shard order) is returned; `*outcome`, if given, is
  /// filled either way.
  Status IngestRegistrations(std::span<const RegistrationMessage> batch,
                             ThreadPool* pool = nullptr,
                             IngestOutcome* outcome = nullptr);

  /// Ingests a batch of perturbed reports; same concurrency and error
  /// semantics as IngestRegistrations.
  Status IngestReports(std::span<const ReportMessage> batch,
                       ThreadPool* pool = nullptr,
                       IngestOutcome* outcome = nullptr);

  /// Ingests raw wire bytes — a registration or report batch, v1 or v2,
  /// detected from the header — with exactly one decode and no caller-side
  /// fan-out. Snapshot and delta blobs are rejected: restoring state is
  /// Restore's job, not an ingestion side effect.
  ///
  /// Corruption verdict (the NACK a sender keys retransmission off): a
  /// batch garbled in flight fails with StatusCode::kDataLoss — always for
  /// v2 (the FNV-1a trailer is verified before any record is decoded, so
  /// nothing is applied), and for header-level damage on any version. A v1
  /// payload flip may instead fail decode with kInvalidArgument or, worse,
  /// still decode and silently apply — the gap v2 exists to close.
  Status IngestEncoded(std::string_view bytes, ThreadPool* pool = nullptr,
                       IngestOutcome* outcome = nullptr);

  /// Serializes shard state into one versioned, checksummed blob (see
  /// core/snapshot.h and docs/FORMATS.md): every shard under kFull, only
  /// the dirtied shards under kDelta. Shards are captured one at a time:
  /// concurrent ingestion is safe but lands in the checkpoint only
  /// partially — quiesce ingestion for a point-in-time snapshot.
  /// Concurrent Checkpoint/Restore calls serialize against each other.
  Result<std::string> Checkpoint(CheckpointMode mode = CheckpointMode::kFull);

  /// Replaces shard state from a Checkpoint blob, full or delta.
  ///
  /// A full blob must match this aggregator's shape (num_periods, scales,
  /// dedup policy and window); its shard count may differ, in which case
  /// every client's state is re-bucketed by id onto this aggregator's
  /// shards (elastic resharding) — estimates stay bit-identical either
  /// way, and ingestion resumes exactly where the checkpoint left off. A
  /// resharded restore breaks the delta chain: take a full checkpoint
  /// before the next kDelta.
  ///
  /// A delta blob applies only on top of its exact base: same shard
  /// count, a chain position (epoch, seq) this aggregator is at, and no
  /// ingestion since that position — restore the base full blob, then
  /// each delta in order, before resuming ingest. Anything else is a
  /// FailedPrecondition.
  ///
  /// On any error the aggregator is unchanged. Like Checkpoint, quiesce
  /// ingestion first: shards are swapped one at a time, so a batch
  /// ingested concurrently with Restore may survive on some shards and be
  /// wiped on others.
  Status Restore(std::string_view bytes);

  /// The online estimate a_hat[t]; see Server::EstimateAt.
  Result<double> EstimateAt(int64_t t) const;

  /// Estimates for every t in [1..d]; see Server::EstimateAll.
  Result<std::vector<double>> EstimateAll() const;

  /// Offline estimates with GLS tree-consistency post-processing; see
  /// Server::EstimateAllConsistent.
  Result<std::vector<double>> EstimateAllConsistent() const;

  /// Net population change over [l..r]; see Server::EstimateWindowDelta.
  Result<double> EstimateWindowDelta(int64_t l, int64_t r) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t num_periods() const { return num_periods_; }

  DedupPolicy dedup_policy() const { return dedup_policy_; }

  /// The dedup eviction policy every shard was built with.
  const DedupWindowPolicy& dedup_window() const { return dedup_window_; }

  /// The aggregate-store configuration every shard was built with
  /// (canonical form). Restored checkpoints must match it.
  const StoreConfig& store_config() const { return store_config_; }

  /// The estimator every shard was built with. Restored checkpoints must
  /// match it.
  const EstimatorSpec& estimator() const { return estimator_spec_; }

  /// Registered clients, summed over shards.
  int64_t num_clients() const;

  /// Retransmissions absorbed under kIdempotent, summed over shards.
  int64_t duplicates_dropped() const;

  /// Reports dropped behind the eviction watermark, summed over shards.
  /// Always 0 under an unbounded DedupWindowPolicy.
  int64_t out_of_window_dropped() const;

  /// Estimated heap footprint of all shard state plus the query snapshot,
  /// in bytes; see Server::ApproxMemoryBytes.
  int64_t ApproxMemoryBytes() const;

  /// The shard a client id maps to (id mod num_shards, non-negative).
  int ShardIndex(int64_t client_id) const;

 private:
  struct Shard {
    std::unique_ptr<std::mutex> mutex;
    Server server;
    // Checkpoint dirtiness, guarded by `mutex`: `version` bumps on every
    // mutation (ingest or restore), `checkpointed_version` records the
    // version the last checkpoint captured. They differ iff the shard
    // belongs in the next delta.
    uint64_t version = 0;
    uint64_t checkpointed_version = 0;
  };

  ShardedAggregator(int64_t num_periods, std::vector<double> level_scales,
                    DedupPolicy dedup, DedupWindowPolicy window,
                    StoreConfig store, EstimatorSpec estimator,
                    std::vector<Shard> shards, Server snapshot);

  // Re-merges every shard into snapshot_ if ingestion happened since the
  // last refresh. Caller holds *snapshot_mutex_.
  Status RefreshSnapshotLocked() const;

  void MarkDirty();

  // Decodes and shape-validates one shard blob against this aggregator's
  // configuration.
  Result<Server> DecodeAndValidateShard(std::string_view state) const;

  Status RestoreFull(std::string_view bytes);
  Status RestoreDelta(std::string_view bytes);

  template <typename Message, typename Apply>
  Status IngestBatch(std::span<const Message> batch, ThreadPool* pool,
                     IngestOutcome* outcome, const Apply& apply);

  int64_t num_periods_;
  std::vector<double> level_scales_;
  DedupPolicy dedup_policy_;
  DedupWindowPolicy dedup_window_;
  StoreConfig store_config_;  // canonical form
  EstimatorSpec estimator_spec_;
  std::vector<Shard> shards_;

  // Checkpoint chain position, guarded by *checkpoint_mutex_ (which also
  // serializes whole Checkpoint/Restore calls against each other):
  // checkpoint_epoch_ fingerprints the last full checkpoint's state
  // (FNV-1a over the shard payloads; 0 = none yet), and checkpoint_seq_
  // counts the deltas taken since it.
  std::unique_ptr<std::mutex> checkpoint_mutex_;
  uint64_t checkpoint_epoch_ = 0;
  uint64_t checkpoint_seq_ = 0;

  // Lazily merged view of all shards; valid iff !snapshot_dirty_.
  mutable std::unique_ptr<std::mutex> snapshot_mutex_;
  mutable Server snapshot_;
  mutable bool snapshot_dirty_ = false;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_AGGREGATOR_H_
