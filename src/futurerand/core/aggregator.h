// Batch-first, thread-safe aggregation service: a façade over K Server
// shards keyed by client id.
//
// Ingestion takes whole batches — decoded messages or raw wire bytes — and
// groups them per shard so each shard's mutex is taken once per batch;
// independent batches ingest concurrently from any number of threads. The
// query surface (EstimateAt / EstimateAll / EstimateAllConsistent /
// EstimateWindowDelta) answers from a lazily merged snapshot of the shards,
// rebuilt only when a dirty flag says ingestion happened since the last
// query. Estimates are bit-identical for any shard count: the shards hold
// integer report sums, and integer addition is order-independent.

#ifndef FUTURERAND_CORE_AGGREGATOR_H_
#define FUTURERAND_CORE_AGGREGATOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/common/threadpool.h"
#include "futurerand/core/config.h"
#include "futurerand/core/server.h"
#include "futurerand/core/wire.h"

namespace futurerand::core {

/// Thread-safe sharded aggregator. Move-only. Safe for concurrent Ingest*
/// and Estimate* calls; a query concurrent with an in-flight ingest may see
/// a prefix of that batch, but every query issued after an ingest returns
/// sees all of it.
class ShardedAggregator {
 public:
  /// Builds `num_shards` Server shards (>= 1) for the protocol
  /// configuration, with the exact per-level debiasing scales.
  static Result<ShardedAggregator> ForProtocol(const ProtocolConfig& config,
                                               int num_shards);

  /// Builds shards with externally supplied per-level report scales (for
  /// baseline protocols whose estimators carry extra factors, e.g. the
  /// Erlingsson server).
  static Result<ShardedAggregator> WithScales(
      int64_t num_periods, std::vector<double> level_scales, int num_shards);

  ShardedAggregator(ShardedAggregator&&) = default;
  ShardedAggregator& operator=(ShardedAggregator&&) = default;
  ShardedAggregator(const ShardedAggregator&) = delete;
  ShardedAggregator& operator=(const ShardedAggregator&) = delete;

  /// Registers a batch of clients (id + sampled level). With a pool, shards
  /// ingest their slices concurrently. Batches are not atomic: on error,
  /// records before the offending one stay applied and the first error (in
  /// shard order) is returned.
  Status IngestRegistrations(std::span<const RegistrationMessage> batch,
                             ThreadPool* pool = nullptr);

  /// Ingests a batch of perturbed reports; same concurrency and error
  /// semantics as IngestRegistrations.
  Status IngestReports(std::span<const ReportMessage> batch,
                       ThreadPool* pool = nullptr);

  /// Ingests raw wire bytes — a registration or report batch, detected from
  /// the header — with exactly one decode and no caller-side fan-out.
  Status IngestEncoded(std::string_view bytes, ThreadPool* pool = nullptr);

  /// The online estimate a_hat[t]; see Server::EstimateAt.
  Result<double> EstimateAt(int64_t t) const;

  /// Estimates for every t in [1..d]; see Server::EstimateAll.
  Result<std::vector<double>> EstimateAll() const;

  /// Offline estimates with GLS tree-consistency post-processing; see
  /// Server::EstimateAllConsistent.
  Result<std::vector<double>> EstimateAllConsistent() const;

  /// Net population change over [l..r]; see Server::EstimateWindowDelta.
  Result<double> EstimateWindowDelta(int64_t l, int64_t r) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int64_t num_periods() const { return num_periods_; }

  /// Registered clients, summed over shards.
  int64_t num_clients() const;

  /// The shard a client id maps to (id mod num_shards, non-negative).
  int ShardIndex(int64_t client_id) const;

 private:
  struct Shard {
    std::unique_ptr<std::mutex> mutex;
    Server server;
  };

  ShardedAggregator(int64_t num_periods, std::vector<double> level_scales,
                    std::vector<Shard> shards, Server snapshot);

  // Re-merges every shard into snapshot_ if ingestion happened since the
  // last refresh. Caller holds *snapshot_mutex_.
  Status RefreshSnapshotLocked() const;

  void MarkDirty();

  template <typename Message, typename Apply>
  Status IngestBatch(std::span<const Message> batch, ThreadPool* pool,
                     const Apply& apply);

  int64_t num_periods_;
  std::vector<double> level_scales_;
  std::vector<Shard> shards_;

  // Lazily merged view of all shards; valid iff !snapshot_dirty_.
  mutable std::unique_ptr<std::mutex> snapshot_mutex_;
  mutable Server snapshot_;
  mutable bool snapshot_dirty_ = false;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_AGGREGATOR_H_
