#include "futurerand/core/fleet.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <limits>
#include <mutex>
#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/common/random.h"
#include "futurerand/common/simd.h"

namespace futurerand::core {

ClientFleet::ClientFleet(const ProtocolConfig& config, ThreadPool* pool,
                         int64_t first_client_id)
    : config_(config), pool_(pool), first_client_id_(first_client_id) {}

Result<ClientFleet> ClientFleet::Create(const ProtocolConfig& config,
                                        int64_t num_clients,
                                        uint64_t base_seed, ThreadPool* pool,
                                        int64_t first_client_id) {
  FR_RETURN_NOT_OK(config.Validate());
  if (num_clients < 0) {
    return Status::InvalidArgument("num_clients must be non-negative");
  }
  if (num_clients > std::numeric_limits<int32_t>::max()) {
    // Cohort membership is stored as int32 positions.
    return Status::InvalidArgument("fleet size exceeds 2^31 - 1 clients");
  }
  ClientFleet fleet(config, pool, first_client_id);
  const auto n = static_cast<size_t>(num_clients);
  fleet.levels_.resize(n);
  fleet.current_states_.assign(n, 0);
  fleet.boundary_states_.assign(n, 0);
  fleet.randomizers_.resize(n);
  fleet.registrations_.resize(n);

  // Each client's creation mirrors Client::Create exactly: one Rng seeded
  // from the forked stream draws the level, then seeds the randomizer.
  const Rng base(base_seed);
  std::mutex error_mutex;
  Status first_error;
  std::atomic<bool> failed{false};
  auto create_range = [&](int64_t begin, int64_t end) {
    for (int64_t u = begin; u < end; ++u) {
      // Another chunk already hit an error: constructing more randomizers
      // (each pre-computes a noise vector) is O(n) wasted work, so every
      // chunk bails at its next iteration.
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      const auto i = static_cast<size_t>(u);
      const int64_t client_id = first_client_id + u;
      Rng rng(base.Fork(static_cast<uint64_t>(client_id)).NextUint64());
      const int level = static_cast<int>(
          rng.NextInt(static_cast<uint64_t>(config.num_orders())));
      const int64_t length = config.num_periods >> level;
      const int64_t support = config.SupportAtLevel(level);
      auto randomizer = rand::MakeSequenceRandomizer(
          config.randomizer, length, support, config.epsilon,
          rng.NextUint64());
      if (!randomizer.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) {
          first_error = randomizer.status();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      fleet.levels_[i] = level;
      fleet.randomizers_[i] = std::move(*randomizer);
      fleet.registrations_[i] = RegistrationMessage{client_id, level};
    }
  };
  if (pool != nullptr && num_clients > 1) {
    pool->ParallelFor(num_clients, create_range);
  } else {
    create_range(0, num_clients);
  }
  FR_RETURN_NOT_OK(first_error);

  // Precompute the nested reporting cohorts (id order within each): client
  // u is due at tick t iff 2^level divides t, i.e. level <= countr_zero(t).
  fleet.cohort_by_tz_.resize(static_cast<size_t>(config.num_orders()));
  for (size_t u = 0; u < n; ++u) {
    for (int z = fleet.levels_[u]; z < config.num_orders(); ++z) {
      fleet.cohort_by_tz_[static_cast<size_t>(z)].push_back(
          static_cast<int32_t>(u));
    }
  }
  return fleet;
}

Status ClientFleet::AdvanceTick(std::span<const int8_t> states,
                                ReportBatch* batch) {
  if (static_cast<int64_t>(states.size()) != size()) {
    return Status::InvalidArgument("states span must cover every client");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  if (!simd::AllZeroOrOne(states.data(), states.size())) {
    return Status::InvalidArgument("state must be 0 or 1");
  }
  TickValidated(states, batch);
  return Status::OK();
}

Result<ReportBatch> ClientFleet::AdvanceTick(std::span<const int8_t> states) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTick(states, &batch));
  return batch;
}

Status ClientFleet::AdvanceTickDerivatives(
    std::span<const int8_t> derivatives, ReportBatch* batch) {
  if (static_cast<int64_t>(derivatives.size()) != size()) {
    return Status::InvalidArgument(
        "derivatives span must cover every client");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  // Validate the whole tick read-only; scratch is written only after the
  // tick is known good, so a failed call leaves the fleet byte-identical.
  if (!simd::ValidDerivativeStep(current_states_.data(), derivatives.data(),
                                 derivatives.size())) {
    // Rare path: re-scan serially for the first offending element so the
    // error message matches the per-element checks exactly.
    for (size_t i = 0; i < derivatives.size(); ++i) {
      const int8_t derivative = derivatives[i];
      if (derivative != -1 && derivative != 0 && derivative != 1) {
        return Status::InvalidArgument("derivative must be in {-1,0,+1}");
      }
      const auto next_state =
          static_cast<int8_t>(current_states_[i] + derivative);
      if (next_state != 0 && next_state != 1) {
        return Status::InvalidArgument(
            "derivative would move the Boolean state outside {0,1}");
      }
    }
    FR_CHECK_MSG(false, "vector and scalar derivative validation disagree");
  }
  state_scratch_.resize(derivatives.size());
  simd::AddI8(current_states_.data(), derivatives.data(),
              state_scratch_.data(), derivatives.size());
  TickValidated(state_scratch_, batch);
  return Status::OK();
}

Result<ReportBatch> ClientFleet::AdvanceTickDerivatives(
    std::span<const int8_t> derivatives) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTickDerivatives(derivatives, &batch));
  return batch;
}

std::string ClientFleet::EncodeRegistrations() const {
  return EncodeRegistrationBatch(registrations_, wire_version_);
}

Result<std::string> ClientFleet::AdvanceTickEncoded(
    std::span<const int8_t> states) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTick(states, &batch));
  return EncodeReportBatch(batch, wire_version_);
}

void ClientFleet::TickValidated(std::span<const int8_t> states,
                                ReportBatch* batch) {
  ++time_;
  const int64_t t = time_;
  const size_t n = states.size();
  batch->clear();
  if (n == 0) {
    return;
  }

  // Fleet-wide change detection and state refresh as whole-column kernels.
  changes_total_ +=
      simd::CountMismatches(states.data(), current_states_.data(), n);
  std::memcpy(current_states_.data(), states.data(), n);

  // The reporting cohort depends only on countr_zero(t) (clamped: every
  // level is < num_orders, so deeper trailing zeros add no members).
  const auto z = static_cast<size_t>(
      std::min<int64_t>(std::countr_zero(static_cast<uint64_t>(t)),
                        config_.num_orders() - 1));
  const std::vector<int32_t>& cohort = cohort_by_tz_[z];
  batch->resize(cohort.size());

  if (cohort.size() == n) {
    // Everyone reports (t a multiple of the deepest interval): telescoping
    // (Observation 3.7: the partial sum is st[t] - st[t - 2^h]) and the
    // boundary refresh are contiguous column ops.
    partial_scratch_.resize(n);
    simd::SubI8(current_states_.data(), boundary_states_.data(),
                partial_scratch_.data(), n);
    std::memcpy(boundary_states_.data(), current_states_.data(), n);
    auto randomize_range = [&](int64_t begin, int64_t end) {
      for (int64_t u = begin; u < end; ++u) {
        const auto i = static_cast<size_t>(u);
        (*batch)[i] = ReportMessage{
            first_client_id_ + u, t,
            randomizers_[i]->Randomize(partial_scratch_[i])};
      }
    };
    if (pool_ != nullptr && n > 1) {
      pool_->ParallelFor(static_cast<int64_t>(n), randomize_range);
    } else {
      randomize_range(0, static_cast<int64_t>(n));
    }
  } else {
    // Sparse cohort: gather per member. Each member touches only its own
    // slots (cohort positions are distinct), so the loop parallelizes with
    // no synchronization and stays bit-identical to the serial order.
    auto randomize_range = [&](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        const auto i =
            static_cast<size_t>(cohort[static_cast<size_t>(j)]);
        const int8_t state = current_states_[i];
        const auto partial_sum =
            static_cast<int8_t>(state - boundary_states_[i]);
        boundary_states_[i] = state;
        (*batch)[static_cast<size_t>(j)] = ReportMessage{
            first_client_id_ + static_cast<int64_t>(i), t,
            randomizers_[i]->Randomize(partial_sum)};
      }
    };
    const auto cohort_size = static_cast<int64_t>(cohort.size());
    if (pool_ != nullptr && cohort_size > 1) {
      pool_->ParallelFor(cohort_size, randomize_range);
    } else {
      randomize_range(0, cohort_size);
    }
  }
  reports_emitted_ += static_cast<int64_t>(batch->size());
}

int64_t ClientFleet::changes_seen() const { return changes_total_; }

int64_t ClientFleet::support_overflow_count() const {
  int64_t total = 0;
  for (const auto& randomizer : randomizers_) {
    total += randomizer->support_overflow_count();
  }
  return total;
}

}  // namespace futurerand::core
