#include "futurerand/core/fleet.h"

#include <mutex>
#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/common/random.h"

namespace futurerand::core {

ClientFleet::ClientFleet(const ProtocolConfig& config, ThreadPool* pool,
                         int64_t first_client_id)
    : config_(config), pool_(pool), first_client_id_(first_client_id) {}

Result<ClientFleet> ClientFleet::Create(const ProtocolConfig& config,
                                        int64_t num_clients,
                                        uint64_t base_seed, ThreadPool* pool,
                                        int64_t first_client_id) {
  FR_RETURN_NOT_OK(config.Validate());
  if (num_clients < 0) {
    return Status::InvalidArgument("num_clients must be non-negative");
  }
  ClientFleet fleet(config, pool, first_client_id);
  const auto n = static_cast<size_t>(num_clients);
  fleet.levels_.resize(n);
  fleet.interval_lengths_.resize(n);
  fleet.current_states_.assign(n, 0);
  fleet.boundary_states_.assign(n, 0);
  fleet.changes_seen_.assign(n, 0);
  fleet.randomizers_.resize(n);
  fleet.registrations_.resize(n);
  fleet.report_scratch_.assign(n, 0);

  // Each client's creation mirrors Client::Create exactly: one Rng seeded
  // from the forked stream draws the level, then seeds the randomizer.
  const Rng base(base_seed);
  std::mutex error_mutex;
  Status first_error;
  auto create_range = [&](int64_t begin, int64_t end) {
    for (int64_t u = begin; u < end; ++u) {
      const auto i = static_cast<size_t>(u);
      const int64_t client_id = first_client_id + u;
      Rng rng(base.Fork(static_cast<uint64_t>(client_id)).NextUint64());
      const int level = static_cast<int>(
          rng.NextInt(static_cast<uint64_t>(config.num_orders())));
      const int64_t length = config.num_periods >> level;
      const int64_t support = config.SupportAtLevel(level);
      auto randomizer = rand::MakeSequenceRandomizer(
          config.randomizer, length, support, config.epsilon,
          rng.NextUint64());
      if (!randomizer.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) {
          first_error = randomizer.status();
        }
        return;
      }
      fleet.levels_[i] = level;
      fleet.interval_lengths_[i] = int64_t{1} << level;
      fleet.randomizers_[i] = std::move(*randomizer);
      fleet.registrations_[i] = RegistrationMessage{client_id, level};
    }
  };
  if (pool != nullptr && num_clients > 1) {
    pool->ParallelFor(num_clients, create_range);
  } else {
    create_range(0, num_clients);
  }
  FR_RETURN_NOT_OK(first_error);
  return fleet;
}

Status ClientFleet::AdvanceTick(std::span<const int8_t> states,
                                ReportBatch* batch) {
  if (static_cast<int64_t>(states.size()) != size()) {
    return Status::InvalidArgument("states span must cover every client");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  for (const int8_t state : states) {
    if (state != 0 && state != 1) {
      return Status::InvalidArgument("state must be 0 or 1");
    }
  }
  TickValidated(states, batch);
  return Status::OK();
}

Result<ReportBatch> ClientFleet::AdvanceTick(std::span<const int8_t> states) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTick(states, &batch));
  return batch;
}

Status ClientFleet::AdvanceTickDerivatives(
    std::span<const int8_t> derivatives, ReportBatch* batch) {
  if (static_cast<int64_t>(derivatives.size()) != size()) {
    return Status::InvalidArgument(
        "derivatives span must cover every client");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  state_scratch_.resize(derivatives.size());
  for (size_t i = 0; i < derivatives.size(); ++i) {
    const int8_t derivative = derivatives[i];
    if (derivative != -1 && derivative != 0 && derivative != 1) {
      return Status::InvalidArgument("derivative must be in {-1,0,+1}");
    }
    const auto next_state =
        static_cast<int8_t>(current_states_[i] + derivative);
    if (next_state != 0 && next_state != 1) {
      return Status::InvalidArgument(
          "derivative would move the Boolean state outside {0,1}");
    }
    state_scratch_[i] = next_state;
  }
  TickValidated(state_scratch_, batch);
  return Status::OK();
}

Result<ReportBatch> ClientFleet::AdvanceTickDerivatives(
    std::span<const int8_t> derivatives) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTickDerivatives(derivatives, &batch));
  return batch;
}

std::string ClientFleet::EncodeRegistrations() const {
  return EncodeRegistrationBatch(registrations_, wire_version_);
}

Result<std::string> ClientFleet::AdvanceTickEncoded(
    std::span<const int8_t> states) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTick(states, &batch));
  return EncodeReportBatch(batch, wire_version_);
}

void ClientFleet::TickValidated(std::span<const int8_t> states,
                                ReportBatch* batch) {
  ++time_;
  const int64_t t = time_;
  // Each client touches only its own slots, so the loop parallelizes with
  // no synchronization and stays bit-identical to the serial order.
  auto advance_range = [&](int64_t begin, int64_t end) {
    for (int64_t u = begin; u < end; ++u) {
      const auto i = static_cast<size_t>(u);
      const int8_t state = states[i];
      if (state != current_states_[i]) {
        ++changes_seen_[i];
      }
      current_states_[i] = state;
      if (t % interval_lengths_[i] != 0) {
        continue;
      }
      // Observation 3.7: the interval's partial sum telescopes to
      // st[t] - st[t - 2^h].
      const auto partial_sum =
          static_cast<int8_t>(state - boundary_states_[i]);
      boundary_states_[i] = state;
      report_scratch_[i] = randomizers_[i]->Randomize(partial_sum);
    }
  };
  if (pool_ != nullptr && size() > 1) {
    pool_->ParallelFor(size(), advance_range);
  } else {
    advance_range(0, size());
  }

  // Which clients report at t depends only on their (public) levels, so the
  // packed batch is compacted serially in client-id order.
  batch->clear();
  for (int64_t u = 0; u < size(); ++u) {
    const auto i = static_cast<size_t>(u);
    if (t % interval_lengths_[i] == 0) {
      batch->push_back(
          ReportMessage{first_client_id_ + u, t, report_scratch_[i]});
    }
  }
  reports_emitted_ += static_cast<int64_t>(batch->size());
}

int64_t ClientFleet::changes_seen() const {
  int64_t total = 0;
  for (const int64_t changes : changes_seen_) {
    total += changes;
  }
  return total;
}

int64_t ClientFleet::support_overflow_count() const {
  int64_t total = 0;
  for (const auto& randomizer : randomizers_) {
    total += randomizer->support_overflow_count();
  }
  return total;
}

}  // namespace futurerand::core
