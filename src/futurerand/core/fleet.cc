#include "futurerand/core/fleet.h"

#include <atomic>
#include <bit>
#include <cstring>
#include <limits>
#include <mutex>
#include <utility>

#include "futurerand/common/macros.h"
#include "futurerand/common/random.h"
#include "futurerand/common/simd.h"
#include "futurerand/randomizer/longitudinal.h"

namespace futurerand::core {

ClientFleet::ClientFleet(const ProtocolConfig& config, ThreadPool* pool,
                         int64_t first_client_id)
    : config_(config), pool_(pool), first_client_id_(first_client_id) {}

Result<ClientFleet> ClientFleet::Create(const ProtocolConfig& config,
                                        int64_t num_clients,
                                        uint64_t base_seed, ThreadPool* pool,
                                        int64_t first_client_id) {
  FR_RETURN_NOT_OK(config.Validate());
  if (num_clients < 0) {
    return Status::InvalidArgument("num_clients must be non-negative");
  }
  if (num_clients > std::numeric_limits<int32_t>::max()) {
    // Cohort membership is stored as int32 positions.
    return Status::InvalidArgument("fleet size exceeds 2^31 - 1 clients");
  }
  ClientFleet fleet(config, pool, first_client_id);
  const auto n = static_cast<size_t>(num_clients);
  fleet.levels_.resize(n);
  fleet.current_states_.assign(n, 0);
  fleet.boundary_states_.assign(n, 0);
  fleet.randomizers_.resize(n);
  fleet.registrations_.resize(n);

  // Each client's creation mirrors Client::Create exactly: one Rng seeded
  // from the forked stream draws the level, then seeds the randomizer.
  const Rng base(base_seed);
  std::mutex error_mutex;
  Status first_error;
  std::atomic<bool> failed{false};
  auto create_range = [&](int64_t begin, int64_t end) {
    for (int64_t u = begin; u < end; ++u) {
      // Another chunk already hit an error: constructing more randomizers
      // (each pre-computes a noise vector) is O(n) wasted work, so every
      // chunk bails at its next iteration.
      if (failed.load(std::memory_order_relaxed)) {
        return;
      }
      const auto i = static_cast<size_t>(u);
      const int64_t client_id = first_client_id + u;
      Rng rng(base.Fork(static_cast<uint64_t>(client_id)).NextUint64());
      // Longitudinal clients all sit at level 0 (they report every tick);
      // the level draw is skipped entirely — not drawn-and-discarded — so
      // the randomizer seed is the FIRST draw on both the fleet and the
      // per-client path, keeping them bit-identical.
      const int level =
          rand::IsLongitudinalKind(config.randomizer)
              ? 0
              : static_cast<int>(rng.NextInt(
                    static_cast<uint64_t>(config.num_orders())));
      const int64_t length = config.num_periods >> level;
      const int64_t support = config.SupportAtLevel(level);
      auto randomizer = rand::MakeSequenceRandomizer(
          config.randomizer, length, support, config.epsilon,
          rng.NextUint64(), config.longitudinal_alpha);
      if (!randomizer.ok()) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) {
          first_error = randomizer.status();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      fleet.levels_[i] = level;
      fleet.randomizers_[i] = std::move(*randomizer);
      fleet.registrations_[i] = RegistrationMessage{client_id, level};
    }
  };
  if (pool != nullptr && num_clients > 1) {
    pool->ParallelFor(num_clients, create_range);
  } else {
    create_range(0, num_clients);
  }
  FR_RETURN_NOT_OK(first_error);

  // Precompute the nested reporting cohorts (id order within each): client
  // u is due at tick t iff 2^level divides t, i.e. level <= countr_zero(t).
  fleet.cohort_by_tz_.resize(static_cast<size_t>(config.num_orders()));
  for (size_t u = 0; u < n; ++u) {
    for (int z = fleet.levels_[u]; z < config.num_orders(); ++z) {
      fleet.cohort_by_tz_[static_cast<size_t>(z)].push_back(
          static_cast<int32_t>(u));
    }
  }
  return fleet;
}

Status ClientFleet::AdvanceTick(std::span<const int8_t> states,
                                ReportBatch* batch) {
  if (static_cast<int64_t>(states.size()) != size()) {
    return Status::InvalidArgument("states span must cover every client");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  if (!simd::AllZeroOrOne(states.data(), states.size())) {
    return Status::InvalidArgument("state must be 0 or 1");
  }
  TickValidated(states, batch);
  return Status::OK();
}

Result<ReportBatch> ClientFleet::AdvanceTick(std::span<const int8_t> states) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTick(states, &batch));
  return batch;
}

Status ClientFleet::AdvanceTickDerivatives(
    std::span<const int8_t> derivatives, ReportBatch* batch) {
  if (static_cast<int64_t>(derivatives.size()) != size()) {
    return Status::InvalidArgument(
        "derivatives span must cover every client");
  }
  if (time_ >= config_.num_periods) {
    return Status::OutOfRange("all d time periods already ingested");
  }
  // Validate the whole tick read-only; scratch is written only after the
  // tick is known good, so a failed call leaves the fleet byte-identical.
  if (!simd::ValidDerivativeStep(current_states_.data(), derivatives.data(),
                                 derivatives.size())) {
    // Rare path: re-scan serially for the first offending element so the
    // error message matches the per-element checks exactly.
    for (size_t i = 0; i < derivatives.size(); ++i) {
      const int8_t derivative = derivatives[i];
      if (derivative != -1 && derivative != 0 && derivative != 1) {
        return Status::InvalidArgument("derivative must be in {-1,0,+1}");
      }
      const auto next_state =
          static_cast<int8_t>(current_states_[i] + derivative);
      if (next_state != 0 && next_state != 1) {
        return Status::InvalidArgument(
            "derivative would move the Boolean state outside {0,1}");
      }
    }
    FR_CHECK_MSG(false, "vector and scalar derivative validation disagree");
  }
  state_scratch_.resize(derivatives.size());
  simd::AddI8(current_states_.data(), derivatives.data(),
              state_scratch_.data(), derivatives.size());
  TickValidated(state_scratch_, batch);
  return Status::OK();
}

Result<ReportBatch> ClientFleet::AdvanceTickDerivatives(
    std::span<const int8_t> derivatives) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTickDerivatives(derivatives, &batch));
  return batch;
}

std::string ClientFleet::EncodeRegistrations() const {
  return EncodeRegistrationBatch(registrations_, wire_version_);
}

Result<std::string> ClientFleet::AdvanceTickEncoded(
    std::span<const int8_t> states) {
  ReportBatch batch;
  FR_RETURN_NOT_OK(AdvanceTick(states, &batch));
  return EncodeReportBatch(batch, wire_version_);
}

void ClientFleet::TickValidated(std::span<const int8_t> states,
                                ReportBatch* batch) {
  ++time_;
  const int64_t t = time_;
  const size_t n = states.size();
  batch->clear();
  if (n == 0) {
    return;
  }

  // Fleet-wide change detection and state refresh as whole-column kernels.
  changes_total_ +=
      simd::CountMismatches(states.data(), current_states_.data(), n);
  std::memcpy(current_states_.data(), states.data(), n);

  // The reporting cohort depends only on countr_zero(t) (clamped: every
  // level is < num_orders, so deeper trailing zeros add no members).
  const auto z = static_cast<size_t>(
      std::min<int64_t>(std::countr_zero(static_cast<uint64_t>(t)),
                        config_.num_orders() - 1));
  const std::vector<int32_t>& cohort = cohort_by_tz_[z];
  batch->resize(cohort.size());

  if (cohort.size() == n) {
    // Everyone reports (t a multiple of the deepest interval): telescoping
    // (Observation 3.7: the partial sum is st[t] - st[t - 2^h]) and the
    // boundary refresh are contiguous column ops.
    partial_scratch_.resize(n);
    simd::SubI8(current_states_.data(), boundary_states_.data(),
                partial_scratch_.data(), n);
    std::memcpy(boundary_states_.data(), current_states_.data(), n);
    auto randomize_range = [&](int64_t begin, int64_t end) {
      for (int64_t u = begin; u < end; ++u) {
        const auto i = static_cast<size_t>(u);
        (*batch)[i] = ReportMessage{
            first_client_id_ + u, t,
            randomizers_[i]->Randomize(partial_scratch_[i])};
      }
    };
    if (pool_ != nullptr && n > 1) {
      pool_->ParallelFor(static_cast<int64_t>(n), randomize_range);
    } else {
      randomize_range(0, static_cast<int64_t>(n));
    }
  } else {
    // Sparse cohort: gather per member. Each member touches only its own
    // slots (cohort positions are distinct), so the loop parallelizes with
    // no synchronization and stays bit-identical to the serial order.
    auto randomize_range = [&](int64_t begin, int64_t end) {
      for (int64_t j = begin; j < end; ++j) {
        const auto i =
            static_cast<size_t>(cohort[static_cast<size_t>(j)]);
        const int8_t state = current_states_[i];
        const auto partial_sum =
            static_cast<int8_t>(state - boundary_states_[i]);
        boundary_states_[i] = state;
        (*batch)[static_cast<size_t>(j)] = ReportMessage{
            first_client_id_ + static_cast<int64_t>(i), t,
            randomizers_[i]->Randomize(partial_sum)};
      }
    };
    const auto cohort_size = static_cast<int64_t>(cohort.size());
    if (pool_ != nullptr && cohort_size > 1) {
      pool_->ParallelFor(cohort_size, randomize_range);
    } else {
      randomize_range(0, cohort_size);
    }
  }
  reports_emitted_ += static_cast<int64_t>(batch->size());
}

namespace {

// Doubles travel as raw IEEE-754 bits (the snapshot convention): the
// restored fleet must randomize bit-identically, so the creation
// parameters must round-trip exactly, not via decimal text.
void PutDoubleBits(double value, std::string* out) {
  wire_internal::PutFixed64(std::bit_cast<uint64_t>(value), out);
}

Result<double> GetDoubleBits(std::string_view* bytes) {
  FR_ASSIGN_OR_RETURN(const uint64_t bits, wire_internal::GetFixed64(bytes));
  return std::bit_cast<double>(bits);
}

}  // namespace

Result<std::string> ClientFleet::EncodeLongitudinalState() const {
  if (!rand::IsLongitudinalKind(config_.randomizer)) {
    return Status::FailedPrecondition(
        "fleet's randomizer kind keeps no longitudinal state to snapshot");
  }
  std::string out;
  wire_internal::AppendHeader(wire_internal::kKindFleetLongState, &out);
  // Shape block: everything a restore must match before touching state.
  wire_internal::PutVarint64(static_cast<uint64_t>(config_.randomizer),
                             &out);
  wire_internal::PutVarint64(static_cast<uint64_t>(config_.num_periods),
                             &out);
  PutDoubleBits(config_.epsilon, &out);
  PutDoubleBits(config_.longitudinal_alpha, &out);
  wire_internal::PutVarint64(
      wire_internal::ZigZagEncode(first_client_id_), &out);
  wire_internal::PutVarint64(static_cast<uint64_t>(size()), &out);
  // Fleet clock.
  wire_internal::PutVarint64(static_cast<uint64_t>(time_), &out);
  wire_internal::PutVarint64(static_cast<uint64_t>(reports_emitted_), &out);
  wire_internal::PutVarint64(static_cast<uint64_t>(changes_total_), &out);
  // Per-client memoization state, in client-id order. Every longitudinal
  // client sits at level 0, so position == time_ fleet-wide and is not
  // repeated per client.
  for (const auto& randomizer : randomizers_) {
    const auto& longitudinal =
        static_cast<const rand::LongitudinalRandomizer&>(*randomizer);
    const rand::LongitudinalRandomizer::State state =
        longitudinal.ExportState();
    wire_internal::PutFixed64(state.rng_state, &out);
    wire_internal::PutFixed64(state.hash_seed[0], &out);
    wire_internal::PutFixed64(state.hash_seed[1], &out);
    wire_internal::PutVarint64(
        wire_internal::ZigZagEncode(state.memo[0]), &out);
    wire_internal::PutVarint64(
        wire_internal::ZigZagEncode(state.memo[1]), &out);
    wire_internal::PutVarint64(static_cast<uint64_t>(state.changes), &out);
    out.push_back(static_cast<char>(state.tracked_state));
  }
  wire_internal::AppendChecksum(&out);
  return out;
}

Status ClientFleet::RestoreLongitudinalState(std::string_view bytes) {
  if (!rand::IsLongitudinalKind(config_.randomizer)) {
    return Status::FailedPrecondition(
        "fleet's randomizer kind keeps no longitudinal state to restore");
  }
  // Trailer first (the snapshot convention): nothing of a corrupted blob
  // is ever parsed, so the verdict is kDataLoss, not a field error.
  FR_RETURN_NOT_OK(wire_internal::ConsumeChecksum(&bytes));
  FR_ASSIGN_OR_RETURN(const char kind, wire_internal::CheckHeader(bytes));
  if (kind != wire_internal::kKindFleetLongState) {
    return Status::InvalidArgument(
        "not a fleet longitudinal state blob; cannot restore");
  }
  bytes.remove_prefix(wire_internal::kHeaderSize);
  FR_ASSIGN_OR_RETURN(const uint64_t raw_kind,
                      wire_internal::GetVarint64(&bytes));
  if (raw_kind != static_cast<uint64_t>(config_.randomizer)) {
    return Status::InvalidArgument(
        "snapshot randomizer kind mismatches fleet");
  }
  FR_ASSIGN_OR_RETURN(const uint64_t raw_periods,
                      wire_internal::GetVarint64(&bytes));
  if (raw_periods != static_cast<uint64_t>(config_.num_periods)) {
    return Status::InvalidArgument("snapshot num_periods mismatches fleet");
  }
  FR_ASSIGN_OR_RETURN(const double epsilon, GetDoubleBits(&bytes));
  FR_ASSIGN_OR_RETURN(const double alpha, GetDoubleBits(&bytes));
  if (std::bit_cast<uint64_t>(epsilon) !=
          std::bit_cast<uint64_t>(config_.epsilon) ||
      std::bit_cast<uint64_t>(alpha) !=
          std::bit_cast<uint64_t>(config_.longitudinal_alpha)) {
    return Status::InvalidArgument(
        "snapshot privacy parameters mismatch fleet");
  }
  FR_ASSIGN_OR_RETURN(const uint64_t raw_first,
                      wire_internal::GetVarint64(&bytes));
  if (wire_internal::ZigZagDecode(raw_first) != first_client_id_) {
    return Status::InvalidArgument(
        "snapshot first client id mismatches fleet");
  }
  FR_ASSIGN_OR_RETURN(const uint64_t raw_size,
                      wire_internal::GetVarint64(&bytes));
  if (raw_size != static_cast<uint64_t>(size())) {
    return Status::InvalidArgument("snapshot fleet size mismatches fleet");
  }
  FR_ASSIGN_OR_RETURN(const uint64_t raw_time,
                      wire_internal::GetVarint64(&bytes));
  if (raw_time > static_cast<uint64_t>(config_.num_periods)) {
    return Status::InvalidArgument("snapshot time exceeds num_periods");
  }
  const auto time = static_cast<int64_t>(raw_time);
  FR_ASSIGN_OR_RETURN(const uint64_t raw_reports,
                      wire_internal::GetVarint64(&bytes));
  // Level-0 clients report every tick, so the fleet clock pins the count.
  if (raw_reports != raw_time * static_cast<uint64_t>(size())) {
    return Status::InvalidArgument(
        "snapshot report count inconsistent with its clock");
  }
  FR_ASSIGN_OR_RETURN(const uint64_t raw_changes,
                      wire_internal::GetVarint64(&bytes));
  // Decode and validate every client before mutating anything: like
  // ShardedAggregator::Restore, this either replaces the whole fleet's
  // longitudinal state or leaves it untouched.
  const auto n = static_cast<size_t>(size());
  std::vector<rand::LongitudinalRandomizer::State> states(n);
  uint64_t changes_sum = 0;
  for (size_t i = 0; i < n; ++i) {
    rand::LongitudinalRandomizer::State& state = states[i];
    FR_ASSIGN_OR_RETURN(state.rng_state,
                        wire_internal::GetFixed64(&bytes));
    FR_ASSIGN_OR_RETURN(state.hash_seed[0],
                        wire_internal::GetFixed64(&bytes));
    FR_ASSIGN_OR_RETURN(state.hash_seed[1],
                        wire_internal::GetFixed64(&bytes));
    for (int v = 0; v < 2; ++v) {
      FR_ASSIGN_OR_RETURN(const uint64_t raw_memo,
                          wire_internal::GetVarint64(&bytes));
      const int64_t memo = wire_internal::ZigZagDecode(raw_memo);
      if (memo < std::numeric_limits<int32_t>::min() ||
          memo > std::numeric_limits<int32_t>::max()) {
        return Status::InvalidArgument("snapshot memo value out of range");
      }
      state.memo[v] = static_cast<int32_t>(memo);
    }
    FR_ASSIGN_OR_RETURN(const uint64_t client_changes,
                        wire_internal::GetVarint64(&bytes));
    changes_sum += client_changes;
    state.changes = static_cast<int64_t>(client_changes);
    if (bytes.empty()) {
      return Status::InvalidArgument("snapshot truncated");
    }
    state.tracked_state = static_cast<int8_t>(bytes.front());
    bytes.remove_prefix(1);
    state.position = time;
  }
  if (!bytes.empty()) {
    return Status::InvalidArgument(
        "trailing bytes after fleet longitudinal state");
  }
  if (changes_sum != raw_changes) {
    return Status::InvalidArgument(
        "snapshot change counter inconsistent with its clients");
  }
  // Validate every client against the randomizer spec (memo range, Boolean
  // state, kind-specific seed constraints) before importing any, so a bad
  // blob leaves the whole fleet untouched; the imports after that cannot
  // fail.
  for (size_t i = 0; i < n; ++i) {
    auto* longitudinal =
        static_cast<rand::LongitudinalRandomizer*>(randomizers_[i].get());
    FR_RETURN_NOT_OK(longitudinal->ValidateState(states[i]));
  }
  for (size_t i = 0; i < n; ++i) {
    auto* longitudinal =
        static_cast<rand::LongitudinalRandomizer*>(randomizers_[i].get());
    FR_CHECK_MSG(longitudinal->ImportState(states[i]).ok(),
                 "validated longitudinal state failed to import");
  }
  time_ = time;
  reports_emitted_ = static_cast<int64_t>(raw_reports);
  changes_total_ = static_cast<int64_t>(raw_changes);
  for (size_t i = 0; i < n; ++i) {
    // Level-0 clients hit a dyadic boundary every tick, so the integrated
    // state and the boundary state coincide at every snapshot point.
    current_states_[i] = states[i].tracked_state;
    boundary_states_[i] = states[i].tracked_state;
  }
  return Status::OK();
}

int64_t ClientFleet::changes_seen() const { return changes_total_; }

int64_t ClientFleet::support_overflow_count() const {
  int64_t total = 0;
  for (const auto& randomizer : randomizers_) {
    total += randomizer->support_overflow_count();
  }
  return total;
}

}  // namespace futurerand::core
