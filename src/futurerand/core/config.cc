#include "futurerand/core/config.h"

#include <cstdio>

#include "futurerand/common/math.h"

namespace futurerand::core {

Status ProtocolConfig::Validate() const {
  if (num_periods < 1 || !IsPowerOfTwo(static_cast<uint64_t>(num_periods))) {
    return Status::InvalidArgument(
        "num_periods (d) must be a positive power of two");
  }
  if (max_changes < 1 || max_changes > num_periods) {
    return Status::InvalidArgument(
        "max_changes (k) must satisfy 1 <= k <= d");
  }
  if (!(epsilon > 0.0) || !(epsilon <= 1.0)) {
    return Status::InvalidArgument(
        "epsilon must lie in (0, 1], the analyzed regime");
  }
  if (!(longitudinal_alpha > 0.0) || !(longitudinal_alpha < 1.0)) {
    return Status::InvalidArgument(
        "longitudinal_alpha (eps_1/eps_perm) must lie in (0, 1)");
  }
  FR_RETURN_NOT_OK(store.Validate());
  return Status::OK();
}

int ProtocolConfig::num_orders() const {
  return Log2Exact(static_cast<uint64_t>(num_periods)) + 1;
}

int64_t ProtocolConfig::SupportAtLevel(int level) const {
  const int64_t length = num_periods >> level;
  if (adapt_support_per_level && length < max_changes) {
    return length;
  }
  return max_changes;
}

std::string ProtocolConfig::ToString() const {
  char buffer[192];
  if (rand::IsLongitudinalKind(randomizer)) {
    std::snprintf(
        buffer, sizeof(buffer),
        "ProtocolConfig{d=%lld k=%lld eps=%.4g alpha=%.4g randomizer=%s "
        "store=%s}",
        static_cast<long long>(num_periods),
        static_cast<long long>(max_changes), epsilon, longitudinal_alpha,
        rand::RandomizerKindToString(randomizer),
        StoreKindToString(store.kind));
  } else {
    std::snprintf(
        buffer, sizeof(buffer),
        "ProtocolConfig{d=%lld k=%lld eps=%.4g randomizer=%s store=%s}",
        static_cast<long long>(num_periods),
        static_cast<long long>(max_changes), epsilon,
        rand::RandomizerKindToString(randomizer),
        StoreKindToString(store.kind));
  }
  return buffer;
}

}  // namespace futurerand::core
