// The sketched aggregate backend: a count-sketch per dyadic level.
//
// A level with more intervals than a shard can afford exactly is replaced
// by R independent hash rows of W buckets each. Every interval I_{h,j}
// hashes to one bucket per row with a pseudo-random sign; Add folds the
// signed delta into all R buckets, Value reads the R sign-corrected
// buckets back and returns their lower median. The estimate is unbiased
// per row (colliding intervals enter with independent signs) and the
// median rejects the occasional heavy collision, at an additive error of
// about sqrt(F2/W) per node, where F2 is the squared mass of the level's
// true counters — see NodeErrorBound for the bound the tests gate on and
// docs/ARCHITECTURE.md "Storage backends" for the derivation.
//
// Levels with at most R*W intervals are stored exactly (sketching them
// would cost more memory AND add error), so only the wide levels near the
// leaves pay any error and total memory is O(orders * R * W + R * W)
// instead of O(d). All state lives in one flat preallocated columnar
// arena (per-level slabs, sketched slabs row-major), and every hash is a
// pure function of (seed, level, row, index) — cells are bit-identical
// across ingest orders, shard counts and merge orders.

#ifndef FUTURERAND_CORE_SKETCH_STORE_H_
#define FUTURERAND_CORE_SKETCH_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "futurerand/core/store.h"

namespace futurerand::core {

class SketchStore final : public AggregateStore {
 public:
  /// StoreConfig::Validate's bounds on the sketch shape. kMaxRows keeps
  /// the median gather on the stack; kMaxWidth caps one level's slab at
  /// 8 GiB even at the maximum depth, and kMinWidth keeps the bucket
  /// mask meaningful.
  static constexpr int32_t kMaxRows = 64;
  static constexpr int64_t kMinWidth = 8;
  static constexpr int64_t kMaxWidth = int64_t{1} << 30;

  /// `config` must be a validated kSketch StoreConfig (FR_CHECKed).
  SketchStore(int64_t num_periods, const StoreConfig& config);

  StoreKind kind() const override { return StoreKind::kSketch; }

  void Add(int order, int64_t index, int64_t delta) override;
  int64_t Value(int order, int64_t index) const override;
  void AccumulateCells(const AggregateStore& other) override;
  int64_t ApproxMemoryBytes() const override;

  int32_t rows() const { return config_.sketch_rows; }
  int64_t width() const { return config_.sketch_width; }
  uint64_t seed() const { return config_.sketch_seed; }
  int num_orders() const { return static_cast<int>(offsets_.size()) - 1; }

  /// True iff order `h` is hash-bucketed (more intervals than R*W cells).
  bool LevelIsSketched(int order) const;

  /// Total cells a (d, rows, width) sketch holds — per level, the smaller
  /// of the exact interval count and R*W. Static so the snapshot decoder
  /// can bound an allocation before constructing anything.
  static int64_t CellCount(int64_t num_periods, int32_t rows, int64_t width);

  /// High-probability additive error of one sketched node's Value, given
  /// that `level_reports` +/-1 reports landed at that level in total:
  /// per row, Var <= F2/W <= level_reports^2/W, so |error| <= 4 *
  /// level_reports / sqrt(W) except with per-row probability <= 1/16
  /// (Chebyshev), and the median fails only if half the rows do
  /// (<= 0.5^R). A prefix query touches at most one node per level, so
  /// query error adds at most scale_h * NodeErrorBound per sketched
  /// level on top of the LDP bound.
  static double NodeErrorBound(int64_t level_reports, int64_t width);

  /// The flat cell arena: per-level slabs in order-major layout, sketched
  /// slabs row-major (R consecutive runs of W buckets), exact slabs one
  /// cell per interval. Exposed for the snapshot codec and tests; the
  /// layout is normative (docs/FORMATS.md kind 8).
  std::span<int64_t> cells() { return cells_; }
  std::span<const int64_t> cells() const { return cells_; }

 private:
  /// Bucket and sign of interval (order, index) in row r, from one mixed
  /// hash of (row seed, index).
  struct Slot {
    int64_t bucket;
    int64_t sign;  // +1 or -1
  };
  Slot SlotFor(int order, int32_t r, int64_t index) const;

  StoreConfig config_;
  std::vector<int64_t> offsets_;     // per-order slab start, + sentinel
  std::vector<uint64_t> row_seeds_;  // orders * rows, from sketch_seed
  std::vector<int64_t> cells_;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_SKETCH_STORE_H_
