// The exact aggregate backend: today's contiguous DyadicTree arena behind
// the AggregateStore interface. One int64 counter per dyadic interval
// (2d-1 total), O(d) memory, zero estimation error — the default, and
// byte-identical in layout and snapshot form to the pre-interface server.

#ifndef FUTURERAND_CORE_DENSE_STORE_H_
#define FUTURERAND_CORE_DENSE_STORE_H_

#include <cstdint>
#include <span>

#include "futurerand/core/store.h"
#include "futurerand/dyadic/tree.h"

namespace futurerand::core {

class DenseStore final : public AggregateStore {
 public:
  explicit DenseStore(int64_t num_periods);

  StoreKind kind() const override { return StoreKind::kDense; }

  void Add(int order, int64_t index, int64_t delta) override {
    tree_.At(order, index) += delta;
  }

  int64_t Value(int order, int64_t index) const override {
    return tree_.At(order, index);
  }

  void AccumulateCells(const AggregateStore& other) override;

  int64_t ApproxMemoryBytes() const override;

  /// The whole arena in (order-major, index-minor) layout — the columnar
  /// view batch consumers (merge, snapshot encode) iterate directly.
  std::span<int64_t> nodes() { return tree_.nodes(); }
  std::span<const int64_t> nodes() const { return tree_.nodes(); }

 private:
  dyadic::DyadicTree<int64_t> tree_;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_DENSE_STORE_H_
