#include "futurerand/core/sketch_store.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "futurerand/common/macros.h"
#include "futurerand/common/random.h"
#include "futurerand/dyadic/interval.h"

namespace futurerand::core {

SketchStore::SketchStore(int64_t num_periods, const StoreConfig& config)
    : AggregateStore(num_periods), config_(config.Canonical()) {
  FR_CHECK_MSG(config_.kind == StoreKind::kSketch && config_.Validate().ok(),
               "SketchStore needs a validated kSketch StoreConfig");
  const int orders = dyadic::NumOrders(num_periods);
  const int64_t slab = static_cast<int64_t>(config_.sketch_rows) *
                       config_.sketch_width;
  offsets_.resize(static_cast<size_t>(orders) + 1);
  offsets_[0] = 0;
  for (int h = 0; h < orders; ++h) {
    const int64_t intervals = dyadic::NumIntervalsAtOrder(num_periods, h);
    offsets_[static_cast<size_t>(h) + 1] =
        offsets_[static_cast<size_t>(h)] + std::min(intervals, slab);
  }
  cells_.assign(static_cast<size_t>(offsets_.back()), 0);
  // One independent hash seed per (level, row), all derived from the
  // configured seed — the whole hash family is a pure function of the
  // StoreConfig, which is what makes equal configs mergeable.
  row_seeds_.resize(static_cast<size_t>(orders) *
                    static_cast<size_t>(config_.sketch_rows));
  uint64_t state = config_.sketch_seed;
  for (uint64_t& row_seed : row_seeds_) {
    row_seed = SplitMix64Next(&state);
  }
}

bool SketchStore::LevelIsSketched(int order) const {
  FR_DCHECK(order >= 0 && order < num_orders());
  const int64_t slab = offsets_[static_cast<size_t>(order) + 1] -
                       offsets_[static_cast<size_t>(order)];
  return slab < dyadic::NumIntervalsAtOrder(domain_size(), order);
}

SketchStore::Slot SketchStore::SlotFor(int order, int32_t r,
                                       int64_t index) const {
  uint64_t state =
      row_seeds_[static_cast<size_t>(order) *
                     static_cast<size_t>(config_.sketch_rows) +
                 static_cast<size_t>(r)] ^
      static_cast<uint64_t>(index);
  const uint64_t hash = SplitMix64Next(&state);
  return Slot{
      static_cast<int64_t>(hash &
                           static_cast<uint64_t>(config_.sketch_width - 1)),
      (hash >> 63) != 0 ? int64_t{1} : int64_t{-1}};
}

void SketchStore::Add(int order, int64_t index, int64_t delta) {
  FR_DCHECK(order >= 0 && order < num_orders());
  FR_DCHECK(index >= 1 &&
            index <= dyadic::NumIntervalsAtOrder(domain_size(), order));
  const int64_t base = offsets_[static_cast<size_t>(order)];
  if (!LevelIsSketched(order)) {
    cells_[static_cast<size_t>(base + index - 1)] += delta;
    return;
  }
  for (int32_t r = 0; r < config_.sketch_rows; ++r) {
    const Slot slot = SlotFor(order, r, index);
    cells_[static_cast<size_t>(base + r * config_.sketch_width +
                               slot.bucket)] += slot.sign * delta;
  }
}

int64_t SketchStore::Value(int order, int64_t index) const {
  FR_DCHECK(order >= 0 && order < num_orders());
  FR_DCHECK(index >= 1 &&
            index <= dyadic::NumIntervalsAtOrder(domain_size(), order));
  const int64_t base = offsets_[static_cast<size_t>(order)];
  if (!LevelIsSketched(order)) {
    return cells_[static_cast<size_t>(base + index - 1)];
  }
  std::array<int64_t, kMaxRows> estimates;
  for (int32_t r = 0; r < config_.sketch_rows; ++r) {
    const Slot slot = SlotFor(order, r, index);
    estimates[static_cast<size_t>(r)] =
        slot.sign *
        cells_[static_cast<size_t>(base + r * config_.sketch_width +
                                   slot.bucket)];
  }
  // Lower median: integer, and deterministic for even row counts too.
  const auto mid = static_cast<size_t>((config_.sketch_rows - 1) / 2);
  std::nth_element(estimates.begin(),
                   estimates.begin() + static_cast<int64_t>(mid),
                   estimates.begin() + config_.sketch_rows);
  return estimates[mid];
}

void SketchStore::AccumulateCells(const AggregateStore& other) {
  FR_CHECK_MSG(other.kind() == StoreKind::kSketch &&
                   other.domain_size() == domain_size(),
               "accumulating structurally different stores");
  const auto& sketch = static_cast<const SketchStore&>(other);
  FR_CHECK_MSG(sketch.config_ == config_,
               "accumulating sketches with different parameters");
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += sketch.cells_[i];
  }
}

int64_t SketchStore::ApproxMemoryBytes() const {
  return static_cast<int64_t>(cells_.capacity() * sizeof(int64_t)) +
         static_cast<int64_t>(row_seeds_.capacity() * sizeof(uint64_t)) +
         static_cast<int64_t>(offsets_.capacity() * sizeof(int64_t));
}

int64_t SketchStore::CellCount(int64_t num_periods, int32_t rows,
                               int64_t width) {
  const int orders = dyadic::NumOrders(num_periods);
  const int64_t slab = static_cast<int64_t>(rows) * width;
  int64_t total = 0;
  for (int h = 0; h < orders; ++h) {
    total += std::min(dyadic::NumIntervalsAtOrder(num_periods, h), slab);
  }
  return total;
}

double SketchStore::NodeErrorBound(int64_t level_reports, int64_t width) {
  return 4.0 * static_cast<double>(level_reports) /
         std::sqrt(static_cast<double>(width));
}

}  // namespace futurerand::core
