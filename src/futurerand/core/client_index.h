// ClientIndex: an append-only open-addressing map from client id to a dense
// int32 slot, backing the Server's columnar per-client state. The client
// population only ever grows (registration has no inverse), so the table
// needs no tombstones and a lookup is one hash + a short linear probe over
// a flat int32 array — in the report hot path this replaces chained
// unordered_map nodes (pointer-chasing, two cache misses per lookup) with
// at most one miss for table sizes that fit in cache.

#ifndef FUTURERAND_CORE_CLIENT_INDEX_H_
#define FUTURERAND_CORE_CLIENT_INDEX_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "futurerand/common/macros.h"

namespace futurerand::core {

/// Maps int64 client ids to dense slots 0..size()-1 in insertion order.
/// Copyable; not thread-safe (the owning Server serializes access).
class ClientIndex {
 public:
  /// The slot of `id`, or -1 if absent.
  int32_t Find(int64_t id) const {
    if (ids_.empty()) {
      return -1;
    }
    // Registered populations are almost always a dense arithmetic
    // progression (a fleet registers first_id..first_id+n-1 in order; a
    // mod-K shard sees every K-th id, still in order). While that holds,
    // the slot is pure arithmetic — no memory touched at all, where the
    // hash probe below costs a cache miss per lookup in the report hot
    // path. The table is maintained on every Insert regardless, so the
    // first irregular id just flips this off with no rebuild.
    if (regular_) {
      const int64_t offset = id - first_id_;
      if (offset < 0) {
        return -1;
      }
      if (stride_ == 1) {
        return offset < size() ? static_cast<int32_t>(offset) : -1;
      }
      if (offset % stride_ != 0) {
        return -1;
      }
      const int64_t slot = offset / stride_;
      return slot < size() ? static_cast<int32_t>(slot) : -1;
    }
    size_t bucket = Hash(id) & mask_;
    while (true) {
      const int32_t slot = table_[bucket];
      if (slot < 0) {
        return -1;
      }
      if (ids_[static_cast<size_t>(slot)] == id) {
        return slot;
      }
      bucket = (bucket + 1) & mask_;
    }
  }

  /// Appends `id` (which must not be present — use Find first) and returns
  /// its new slot.
  int32_t Insert(int64_t id) {
    FR_CHECK_MSG(ids_.size() <
                     static_cast<size_t>(std::numeric_limits<int32_t>::max()),
                 "client index exceeds 2^31 - 1 entries");
    if ((ids_.size() + 1) * 2 > table_.size()) {
      Rehash(table_.empty() ? kInitialBuckets : table_.size() * 2);
    }
    const auto slot = static_cast<int32_t>(ids_.size());
    if (ids_.empty()) {
      first_id_ = id;
    } else if (ids_.size() == 1) {
      stride_ = id - first_id_;
      if (stride_ <= 0) {
        regular_ = false;
      }
    } else if (regular_ &&
               id != first_id_ + stride_ * static_cast<int64_t>(
                                               ids_.size())) {
      regular_ = false;
    }
    ids_.push_back(id);
    size_t bucket = Hash(id) & mask_;
    while (table_[bucket] >= 0) {
      bucket = (bucket + 1) & mask_;
    }
    table_[bucket] = slot;
    return slot;
  }

  /// Slot -> id, in insertion order.
  const std::vector<int64_t>& ids() const { return ids_; }

  int64_t size() const { return static_cast<int64_t>(ids_.size()); }

  void Reserve(size_t n) {
    ids_.reserve(n);
    size_t buckets = kInitialBuckets;
    while (buckets < n * 2) {
      buckets *= 2;
    }
    if (buckets > table_.size()) {
      Rehash(buckets);
    }
  }

  /// Heap bytes of the index itself (for memory accounting).
  int64_t ApproxMemoryBytes() const {
    return static_cast<int64_t>(ids_.capacity() * sizeof(int64_t) +
                                table_.capacity() * sizeof(int32_t));
  }

 private:
  static constexpr size_t kInitialBuckets = 16;

  // SplitMix64 finalizer: full-avalanche, so sequential ids spread evenly.
  static uint64_t Hash(int64_t id) {
    auto x = static_cast<uint64_t>(id);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  void Rehash(size_t new_buckets) {
    table_.assign(new_buckets, -1);
    mask_ = new_buckets - 1;
    for (size_t slot = 0; slot < ids_.size(); ++slot) {
      size_t bucket = Hash(ids_[slot]) & mask_;
      while (table_[bucket] >= 0) {
        bucket = (bucket + 1) & mask_;
      }
      table_[bucket] = static_cast<int32_t>(slot);
    }
  }

  std::vector<int64_t> ids_;    // slot -> id
  std::vector<int32_t> table_;  // open-addressed buckets; -1 = empty
  size_t mask_ = 0;             // table_.size() - 1 (power of two)
  // While the ids form first_id_ + stride_ * slot (stride_ > 0), Find is
  // arithmetic; the first id off the progression clears regular_ forever.
  bool regular_ = true;
  int64_t first_id_ = 0;
  int64_t stride_ = 1;
};

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_CLIENT_INDEX_H_
