// Consistency post-processing for hierarchical estimates (an offline-mode
// extension in the spirit of Hay et al., VLDB 2010, generalized to
// level-dependent variances).
//
// The server holds an independent unbiased estimate y(I) of the partial sum
// S(I) for EVERY dyadic interval (each level is fed by its own user
// cohort), but the raw estimates ignore the tree identity
// S(parent) = S(left) + S(right). Generalized least squares over that
// constraint system strictly reduces variance and keeps unbiasedness —
// post-processing is free under differential privacy.
//
// The GLS solution is computed exactly in two sweeps:
//   upward   z(I)  = inverse-variance combination of y(I) with
//                    z(left) + z(right)
//   downward x(root) = z(root); the residual x(I) − z(left) − z(right) is
//                    split between the children proportionally to their
//                    subtree variances.
// The result satisfies every tree constraint exactly.

#ifndef FUTURERAND_CORE_CONSISTENCY_H_
#define FUTURERAND_CORE_CONSISTENCY_H_

#include <cstdint>
#include <span>

#include "futurerand/common/result.h"
#include "futurerand/dyadic/tree.h"

namespace futurerand::core {

/// Replaces `estimates` (one unbiased value per dyadic interval) with the
/// GLS-consistent estimates. `level_variances[h]` is the variance of every
/// level-h estimate and must be positive and finite (one entry per order).
/// After the call, At(parent) == At(left) + At(right) for every internal
/// node (up to float round-off).
Status EnforceTreeConsistency(std::span<const double> level_variances,
                              dyadic::DyadicTree<double>* estimates);

/// The variance of the GLS estimate at the root, as computed by the upward
/// sweep — callers can compare it against level_variances.back() to see
/// the gain. Input constraints as above.
Result<double> ConsistentRootVariance(
    std::span<const double> level_variances, int64_t num_periods);

}  // namespace futurerand::core

#endif  // FUTURERAND_CORE_CONSISTENCY_H_
