// Blocking client side of the FRS stream protocol: connect, ship framed
// payloads, read reply frames — tolerating short reads (FrameParser) and
// partial writes (WriteAll) — plus the network twin of the simulator's
// NACK retransmission delivery.
//
// StreamClient is deliberately synchronous: tools/frload drives the fault
// simulation tick by tick and needs each batch's verdict before the next
// channel draw, exactly like the in-process runner. Throughput comes from
// running several connections, not from pipelining one.

#ifndef FUTURERAND_NET_CLIENT_H_
#define FUTURERAND_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/core/wire.h"
#include "futurerand/net/frame.h"
#include "futurerand/net/socket.h"
#include "futurerand/sim/channel.h"
#include "futurerand/sim/metrics.h"

namespace futurerand::net {

/// One blocking connection to an IngestServer. Not thread-safe: the
/// protocol is strict request/reply per connection, so a connection
/// belongs to one thread at a time.
class StreamClient {
 public:
  static Result<StreamClient> ConnectTcp(const std::string& host, int port);
  static Result<StreamClient> ConnectUnix(const std::string& path);

  StreamClient(StreamClient&&) = default;
  StreamClient& operator=(StreamClient&&) = default;
  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  /// Frames `payload` and writes it fully (blocking through partial
  /// writes). Every Send bumps the per-connection sequence number the
  /// server echoes in its reply — including resends of identical bytes,
  /// which are new frames on the wire.
  Status Send(std::string_view payload);

  /// Blocks until one complete reply frame arrives. Fails with kIoError on
  /// EOF and kDataLoss if the stream desyncs or delivers a non-reply frame.
  Result<Reply> ReadReply();

  /// Send + ReadReply, checking that the reply echoes this frame's
  /// sequence number (kDataLoss on mismatch — the stream lost a reply).
  Result<Reply> Call(std::string_view payload);

  /// Sends a control request and waits for its ack. A kError verdict comes
  /// back as the Status the server reported. For ControlOp::kShutdown the
  /// ack is the server's last frame, sent after the drain and the final
  /// checkpoint.
  Status SendControl(ControlOp op);

  /// Frames sent so far (== the sequence number of the last Send).
  uint64_t frames_sent() const { return frames_sent_; }

 private:
  explicit StreamClient(FdGuard fd) : fd_(std::move(fd)) {}

  FdGuard fd_;
  FrameParser parser_;
  std::vector<std::string> pending_;  // decoded-but-unconsumed reply frames
  uint64_t frames_sent_ = 0;
};

/// Ships one encoded batch to the server behind `client` with the same
/// NACK retransmission policy as the in-process
/// sim::DeliverEncodedWithRetransmission — both delegate the budget
/// accounting to sim::RetransmitLoop, so a budget of N means N total
/// transmissions on the wire too. Per attempt: corruption mutates a copy
/// of `pristine` through `channel` (nullable = no corruption possible),
/// the copy rides one Call, and the server's verdict drives the retry —
/// kAck accepts, kNack retransmits the pristine bytes (kV2), kError under
/// kV1 falls back to the channel's oracle flag exactly like the runner.
/// A kOverload verdict resends the SAME bytes after a short backoff
/// without a new channel draw (the server consumed nothing), so overload
/// never perturbs the fault sequence. `delivery` accumulates the outcome
/// counts from the replies, which therefore sum identically to an
/// in-process run.
Status DeliverEncodedOverStream(StreamClient& client,
                                const std::string& pristine,
                                sim::ChannelModel* channel,
                                core::WireVersion wire_version,
                                int64_t retransmit_budget,
                                sim::DeliveryMetrics* delivery);

}  // namespace futurerand::net

#endif  // FUTURERAND_NET_CLIENT_H_
