// The async FRW ingestion service: a non-blocking, epoll-driven (poll
// fallback) server that accepts FRS-framed FRW batches over TCP and Unix
// domain sockets and feeds them to the in-process core::ShardedAggregator.
//
// Threading model (docs/ARCHITECTURE.md "Service"):
//
//   1 IO thread    owns every socket: accepts, reads (tolerating short
//                  reads via FrameParser), writes (tolerating partial
//                  writes via per-connection outboxes), and runs the
//                  checkpoint timer. Never touches the aggregator except
//                  through Checkpoint().
//   N workers      each with a bounded FIFO queue. A connection is pinned
//                  to worker (conn id mod N), so one connection's batches
//                  ingest strictly in order — the property the NACK
//                  retransmit protocol and kStrict dedup rely on — while
//                  separate connections ingest concurrently, sharded by
//                  the aggregator's per-shard mutexes.
//
// Per batch the pinned worker calls IngestEncoded and the IO thread sends
// back one reply frame: kAck with the ingest outcome, kNack when the
// receiver's own verdict is kDataLoss (the sender reuses the PR-5
// retransmit policy, sim::RetransmitLoop), kError for non-retryable
// failures. Backpressure is two-layered: a full worker queue answers
// kOverload immediately (nothing consumed — resend the same bytes), and a
// connection whose outbox exceeds max_write_buffer_bytes stops being read
// until it drains.
//
// Durability: with a checkpoint path configured the IO thread checkpoints
// on a timer — full blobs rewrite the file atomically (temp + rename),
// delta blobs append — and shutdown always ends with a quiesced full
// compaction, so RestoreFromCheckpointFile needs no shard-count match.

#ifndef FUTURERAND_NET_SERVER_H_
#define FUTURERAND_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/core/aggregator.h"
#include "futurerand/core/config.h"
#include "futurerand/net/frame.h"
#include "futurerand/net/poller.h"
#include "futurerand/net/socket.h"

namespace futurerand::net {

/// Everything an IngestServer is built from. Validated at Create.
struct ServiceConfig {
  core::ProtocolConfig protocol;
  /// Aggregator shards; 0 = one per worker.
  int num_shards = 0;
  /// Ingest worker threads (>= 1).
  int num_workers = 2;
  core::DedupPolicy dedup = core::DedupPolicy::kStrict;
  core::DedupWindowPolicy dedup_window;
  /// Batches a worker queue holds before the server answers kOverload
  /// instead of queueing (>= 1).
  size_t worker_queue_capacity = 128;
  /// Outbox bytes above which a connection stops being read until its
  /// replies drain (>= 1).
  size_t max_write_buffer_bytes = 4u << 20;
  /// Durable checkpoint file; empty disables checkpointing entirely
  /// (including the final one).
  std::string checkpoint_path;
  /// Timer cadence; 0 = only on ControlOp::kCheckpoint and at shutdown.
  /// Timer checkpoints are live (concurrent ingest may land partially;
  /// the shutdown compaction is quiesced and exact).
  int64_t checkpoint_interval_ms = 0;
  core::CheckpointMode checkpoint_mode = core::CheckpointMode::kFull;
  /// Under kDelta, every this-many-th checkpoint is a full compaction
  /// that rewrites the file (>= 1); mirrors sim::FaultOptions.
  int64_t checkpoint_compact_every = 8;
  /// Forces the poll(2) backend even where epoll exists (tests).
  bool force_poll = false;
  /// Test-only: run in the worker thread before each batch's
  /// IngestEncoded, with the batch's per-connection sequence number. Lets
  /// tests hold a worker mid-ingest to choreograph overload replies.
  std::function<void(uint64_t)> before_ingest_hook;

  Status Validate() const;
};

/// Monotonic counters, readable from any thread while the server runs.
struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t frames_received = 0;
  int64_t batches_acked = 0;
  int64_t batches_nacked = 0;      // kDataLoss verdicts (checksum NACKs)
  int64_t batches_overloaded = 0;  // rejected by a full worker queue
  int64_t batches_errored = 0;     // non-retryable ingest failures
  int64_t records_applied = 0;
  int64_t records_deduped = 0;
  int64_t records_out_of_window = 0;
  int64_t checkpoints_taken = 0;
  int64_t delta_checkpoints_taken = 0;
  int64_t checkpoint_bytes = 0;
};

/// One server instance: Create -> Add*Listener -> Start -> (serve) ->
/// Join. Stop arrives either as a ControlOp::kShutdown frame from a
/// client (acked after the drain, as the connection's last frame) or via
/// RequestStop() from any thread. Shutdown drains every queued batch,
/// takes the final full checkpoint, then exits.
class IngestServer {
 public:
  static Result<std::unique_ptr<IngestServer>> Create(
      const ServiceConfig& config);

  /// Joins outstanding threads (issuing RequestStop first if needed).
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds a TCP listener; returns the actual port (port 0 = ephemeral).
  /// Call before Start.
  Result<int> AddTcpListener(const std::string& host, int port);

  /// Binds a Unix-domain listener at `path`. Call before Start.
  Status AddUnixListener(const std::string& path);

  /// Spawns the IO thread and workers. Requires at least one listener.
  Status Start();

  /// Initiates graceful shutdown from any thread (idempotent).
  void RequestStop();

  /// Blocks until the server has shut down (after a kShutdown control
  /// frame or RequestStop) and returns the first serving error, if any.
  Status Join();

  /// The live aggregator. Concurrent queries are safe while serving;
  /// mutation (Restore) is only safe before Start or after Join.
  core::ShardedAggregator& aggregator() { return aggregator_; }
  const core::ShardedAggregator& aggregator() const { return aggregator_; }

  ServerStats stats() const;

  bool using_epoll() const { return poller_.using_epoll(); }

 private:
  struct WorkItem {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string payload;
  };

  struct Completion {
    uint64_t conn_id = 0;
    Reply reply;
    bool acked_ingest = false;  // counted toward the drain barrier
  };

  // Mutex+condvar bounded FIFO; TryPush never blocks (overload is a
  // protocol reply, not backpressure on the IO thread).
  class BoundedQueue {
   public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}
    bool TryPush(WorkItem item);
    bool Pop(WorkItem* item);  // blocks; false once closed and empty
    void Close();

   private:
    std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<WorkItem> items_;
    size_t capacity_;
    bool closed_ = false;
  };

  struct Connection {
    uint64_t id = 0;
    FdGuard fd;
    int worker = 0;
    FrameParser parser;
    std::string outbox;
    uint64_t frames_received = 0;  // assigns reply sequence numbers
    bool want_write = false;       // current poller write interest
    bool paused = false;           // read interest dropped (backpressure)
    bool closing = false;          // close once the outbox drains
    bool dead = false;             // unlinked; destroyed after this event
                                   // sweep (deferred so in-sweep pointers
                                   // stay valid)
  };

  IngestServer(const ServiceConfig& config,
               core::ShardedAggregator aggregator, Poller poller);

  void IoLoop();
  void WorkerLoop(int index);
  void WakeIo();
  void AcceptAll(int listener_fd);
  void HandleReadable(Connection* conn);
  void ProcessFrame(Connection* conn, std::string payload);
  void EnqueueReply(Connection* conn, const Reply& reply);
  void FlushOutbox(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConnection(uint64_t conn_id);
  void DrainCompletions();
  void CloseListeners();
  // `final` forces a quiesced full compaction (shutdown path).
  Status DoCheckpoint(bool final);
  void FinishShutdown();

  ServiceConfig config_;
  core::ShardedAggregator aggregator_;
  Poller poller_;
  FdGuard wake_read_;
  FdGuard wake_write_;

  std::vector<FdGuard> listeners_;
  std::unordered_map<int, uint64_t> fd_to_conn_;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  // Connections unlinked mid-sweep; their fds close when the sweep ends.
  std::vector<std::unique_ptr<Connection>> graveyard_;
  uint64_t next_conn_id_ = 0;

  std::vector<std::unique_ptr<BoundedQueue>> queues_;
  std::vector<std::thread> workers_;
  std::thread io_thread_;
  bool started_ = false;
  bool joined_ = false;

  std::atomic<bool> stop_requested_{false};
  std::atomic<int64_t> in_flight_{0};  // queued or mid-ingest batches

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  // IO-thread-only shutdown/checkpoint state.
  bool draining_ = false;
  bool have_shutdown_ack_ = false;
  uint64_t shutdown_ack_conn_ = 0;
  uint64_t shutdown_ack_seq_ = 0;
  bool checkpoint_base_taken_ = false;
  int64_t ingests_since_checkpoint_ = 0;
  std::chrono::steady_clock::time_point next_checkpoint_;

  Status serving_error_;
};

/// Rebuilds aggregator state from an IngestServer checkpoint file: a
/// sequence of FRS frames, each one core::ShardedAggregator checkpoint
/// blob, restored in order (full base, then deltas). The shutdown path
/// always leaves a single full blob, which restores onto any shard count.
Status RestoreFromCheckpointFile(const std::string& path,
                                 core::ShardedAggregator* aggregator);

}  // namespace futurerand::net

#endif  // FUTURERAND_NET_SERVER_H_
