#include "futurerand/net/poller.h"

#include <cerrno>
#include <cstring>
#include <poll.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>

namespace futurerand::net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

#ifdef __linux__
uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) {
    mask |= EPOLLIN;
  }
  if (want_write) {
    mask |= EPOLLOUT;
  }
  return mask;
}
#endif

}  // namespace

Result<Poller> Poller::Create(bool force_poll) {
  Poller poller;
#ifdef __linux__
  if (!force_poll) {
    const int fd = ::epoll_create1(0);
    if (fd < 0) {
      return ErrnoStatus("epoll_create1");
    }
    poller.epoll_fd_.reset(fd);
  }
#else
  (void)force_poll;
#endif
  return poller;
}

Status Poller::Add(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epoll_fd_.valid()) {
    epoll_event event{};
    event.events = EpollMask(want_read, want_write);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &event) != 0) {
      return ErrnoStatus("epoll_ctl ADD");
    }
    return Status::OK();
  }
#endif
  uint32_t mask = 0;
  if (want_read) {
    mask |= kReadInterest;
  }
  if (want_write) {
    mask |= kWriteInterest;
  }
  interest_.emplace_back(fd, mask);
  return Status::OK();
}

Status Poller::Update(int fd, bool want_read, bool want_write) {
#ifdef __linux__
  if (epoll_fd_.valid()) {
    epoll_event event{};
    event.events = EpollMask(want_read, want_write);
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &event) != 0) {
      return ErrnoStatus("epoll_ctl MOD");
    }
    return Status::OK();
  }
#endif
  for (auto& [registered, mask] : interest_) {
    if (registered == fd) {
      mask = (want_read ? kReadInterest : 0) |
             (want_write ? kWriteInterest : 0);
      return Status::OK();
    }
  }
  return Status::NotFound("Update on unregistered fd");
}

Status Poller::Remove(int fd) {
#ifdef __linux__
  if (epoll_fd_.valid()) {
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, nullptr) != 0) {
      return ErrnoStatus("epoll_ctl DEL");
    }
    return Status::OK();
  }
#endif
  const auto it = std::find_if(
      interest_.begin(), interest_.end(),
      [fd](const std::pair<int, uint32_t>& entry) {
        return entry.first == fd;
      });
  if (it == interest_.end()) {
    return Status::NotFound("Remove on unregistered fd");
  }
  interest_.erase(it);
  return Status::OK();
}

Result<int> Poller::Wait(std::vector<PollEvent>* events, int timeout_ms) {
  events->clear();
#ifdef __linux__
  if (epoll_fd_.valid()) {
    epoll_event raw[64];
    int count;
    do {
      count = ::epoll_wait(epoll_fd_.get(), raw, 64, timeout_ms);
    } while (count < 0 && errno == EINTR);
    if (count < 0) {
      return ErrnoStatus("epoll_wait");
    }
    for (int i = 0; i < count; ++i) {
      PollEvent event;
      event.fd = raw[i].data.fd;
      event.readable = (raw[i].events & EPOLLIN) != 0;
      event.writable = (raw[i].events & EPOLLOUT) != 0;
      event.hangup = (raw[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return count;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, mask] : interest_) {
    pollfd entry{};
    entry.fd = fd;
    if ((mask & kReadInterest) != 0) {
      entry.events |= POLLIN;
    }
    if ((mask & kWriteInterest) != 0) {
      entry.events |= POLLOUT;
    }
    fds.push_back(entry);
  }
  int count;
  do {
    count = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (count < 0 && errno == EINTR);
  if (count < 0) {
    return ErrnoStatus("poll");
  }
  for (const pollfd& entry : fds) {
    if (entry.revents == 0) {
      continue;
    }
    PollEvent event;
    event.fd = entry.fd;
    event.readable = (entry.revents & POLLIN) != 0;
    event.writable = (entry.revents & POLLOUT) != 0;
    event.hangup = (entry.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return count;
}

}  // namespace futurerand::net
