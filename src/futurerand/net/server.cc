#include "futurerand/net/server.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "futurerand/common/macros.h"

namespace futurerand::net {

namespace {

// Reads at most this many socket chunks per readable event, so one
// firehose connection cannot starve the rest of the loop (level-triggered
// polling re-fires for the remainder).
constexpr int kMaxReadsPerEvent = 16;

constexpr size_t kReadChunkBytes = 1 << 16;

Status WriteFileAtomically(const std::string& path,
                           const std::string& contents) {
  const std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("fopen " + temp + ": " + std::strerror(errno));
  }
  const size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  const bool flushed = std::fclose(file) == 0 && written == contents.size();
  if (!flushed) {
    (void)std::remove(temp.c_str());
    return Status::IoError("short write to " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    (void)std::remove(temp.c_str());
    return Status::IoError("rename " + temp + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status AppendToFile(const std::string& path, const std::string& contents) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("fopen " + path + ": " + std::strerror(errno));
  }
  const size_t written =
      std::fwrite(contents.data(), 1, contents.size(), file);
  if (std::fclose(file) != 0 || written != contents.size()) {
    return Status::IoError("short append to " + path);
  }
  return Status::OK();
}

}  // namespace

Status ServiceConfig::Validate() const {
  FR_RETURN_NOT_OK(protocol.Validate());
  FR_RETURN_NOT_OK(dedup_window.Validate(dedup));
  if (num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (worker_queue_capacity < 1) {
    return Status::InvalidArgument("worker_queue_capacity must be >= 1");
  }
  if (max_write_buffer_bytes < 1) {
    return Status::InvalidArgument("max_write_buffer_bytes must be >= 1");
  }
  if (checkpoint_interval_ms < 0) {
    return Status::InvalidArgument("checkpoint_interval_ms must be >= 0");
  }
  if (checkpoint_interval_ms > 0 && checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "checkpoint_interval_ms needs a checkpoint_path");
  }
  if (checkpoint_mode == core::CheckpointMode::kDelta &&
      checkpoint_compact_every < 1) {
    return Status::InvalidArgument("checkpoint_compact_every must be >= 1");
  }
  return Status::OK();
}

bool IngestServer::BoundedQueue::TryPush(WorkItem item) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) {
      return false;
    }
    items_.push_back(std::move(item));
  }
  ready_.notify_one();
  return true;
}

bool IngestServer::BoundedQueue::Pop(WorkItem* item) {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) {
    return false;
  }
  *item = std::move(items_.front());
  items_.pop_front();
  return true;
}

void IngestServer::BoundedQueue::Close() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

Result<std::unique_ptr<IngestServer>> IngestServer::Create(
    const ServiceConfig& config) {
  FR_RETURN_NOT_OK(config.Validate());
  const int shards =
      config.num_shards > 0 ? config.num_shards : config.num_workers;
  FR_ASSIGN_OR_RETURN(core::ShardedAggregator aggregator,
                      core::ShardedAggregator::ForProtocol(
                          config.protocol, shards, config.dedup,
                          config.dedup_window));
  FR_ASSIGN_OR_RETURN(Poller poller, Poller::Create(config.force_poll));
  std::unique_ptr<IngestServer> server(new IngestServer(
      config, std::move(aggregator), std::move(poller)));
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IoError(std::string("pipe: ") + std::strerror(errno));
  }
  server->wake_read_.reset(pipe_fds[0]);
  server->wake_write_.reset(pipe_fds[1]);
  FR_RETURN_NOT_OK(SetNonBlocking(server->wake_read_.get()));
  FR_RETURN_NOT_OK(SetNonBlocking(server->wake_write_.get()));
  FR_RETURN_NOT_OK(server->poller_.Add(server->wake_read_.get(),
                                       /*want_read=*/true,
                                       /*want_write=*/false));
  for (int w = 0; w < config.num_workers; ++w) {
    server->queues_.push_back(
        std::make_unique<BoundedQueue>(config.worker_queue_capacity));
  }
  return server;
}

IngestServer::IngestServer(const ServiceConfig& config,
                           core::ShardedAggregator aggregator,
                           Poller poller)
    : config_(config),
      aggregator_(std::move(aggregator)),
      poller_(std::move(poller)) {}

IngestServer::~IngestServer() {
  if (started_ && !joined_) {
    RequestStop();
    (void)Join();
  }
}

Result<int> IngestServer::AddTcpListener(const std::string& host,
                                         int port) {
  if (started_) {
    return Status::FailedPrecondition("add listeners before Start");
  }
  FR_ASSIGN_OR_RETURN(TcpListener listener, ListenTcp(host, port));
  FR_RETURN_NOT_OK(SetNonBlocking(listener.fd.get()));
  FR_RETURN_NOT_OK(poller_.Add(listener.fd.get(), /*want_read=*/true,
                               /*want_write=*/false));
  listeners_.push_back(std::move(listener.fd));
  return listener.port;
}

Status IngestServer::AddUnixListener(const std::string& path) {
  if (started_) {
    return Status::FailedPrecondition("add listeners before Start");
  }
  FR_ASSIGN_OR_RETURN(FdGuard fd, ListenUnix(path));
  FR_RETURN_NOT_OK(SetNonBlocking(fd.get()));
  FR_RETURN_NOT_OK(
      poller_.Add(fd.get(), /*want_read=*/true, /*want_write=*/false));
  listeners_.push_back(std::move(fd));
  return Status::OK();
}

Status IngestServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("Start called twice");
  }
  if (listeners_.empty()) {
    return Status::FailedPrecondition("Start needs at least one listener");
  }
  started_ = true;
  if (config_.checkpoint_interval_ms > 0) {
    next_checkpoint_ =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.checkpoint_interval_ms);
  }
  for (int w = 0; w < config_.num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::OK();
}

void IngestServer::RequestStop() {
  stop_requested_.store(true);
  WakeIo();
}

Status IngestServer::Join() {
  if (!started_ || joined_) {
    return serving_error_;
  }
  io_thread_.join();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  joined_ = true;
  return serving_error_;
}

ServerStats IngestServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void IngestServer::WakeIo() {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(wake_write_.get(), &byte, 1);
}

void IngestServer::WorkerLoop(int index) {
  WorkItem item;
  while (queues_[index]->Pop(&item)) {
    if (config_.before_ingest_hook) {
      config_.before_ingest_hook(item.seq);
    }
    core::IngestOutcome outcome;
    const Status ingested =
        aggregator_.IngestEncoded(item.payload, nullptr, &outcome);
    Completion completion;
    completion.conn_id = item.conn_id;
    completion.reply.seq = item.seq;
    completion.reply.applied = outcome.applied;
    completion.reply.deduped = outcome.deduped;
    completion.reply.out_of_window = outcome.out_of_window;
    completion.acked_ingest = true;
    if (ingested.ok()) {
      completion.reply.verdict = Verdict::kAck;
    } else {
      completion.reply.verdict = ingested.code() == StatusCode::kDataLoss
                                     ? Verdict::kNack
                                     : Verdict::kError;
      completion.reply.status = ingested.code();
    }
    {
      const std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(std::move(completion));
    }
    // Decrement after publishing the completion, so in_flight_ == 0 with
    // an empty completion list really means "everything replied".
    in_flight_.fetch_sub(1);
    WakeIo();
  }
}

void IngestServer::IoLoop() {
  std::vector<PollEvent> events;
  for (;;) {
    int timeout_ms = -1;
    if (config_.checkpoint_interval_ms > 0 && !draining_) {
      const auto now = std::chrono::steady_clock::now();
      const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
          next_checkpoint_ - now);
      timeout_ms = std::max<int>(0, static_cast<int>(until.count()));
    }
    if (draining_) {
      // Fallback heartbeat while waiting for workers to drain: the wake
      // pipe is the primary signal, this bounds the race.
      timeout_ms = 10;
    }
    const Result<int> waited = poller_.Wait(&events, timeout_ms);
    if (!waited.ok()) {
      serving_error_ = waited.status();
      break;
    }
    for (const PollEvent& event : events) {
      if (event.fd == wake_read_.get()) {
        char drain[256];
        while (::read(wake_read_.get(), drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      const bool is_listener = std::any_of(
          listeners_.begin(), listeners_.end(),
          [&](const FdGuard& fd) { return fd.get() == event.fd; });
      if (is_listener) {
        if (event.readable) {
          AcceptAll(event.fd);
        }
        continue;
      }
      const auto it = fd_to_conn_.find(event.fd);
      if (it == fd_to_conn_.end()) {
        continue;  // already closed this iteration
      }
      const uint64_t conn_id = it->second;
      Connection* conn = conns_.at(conn_id).get();
      if (event.hangup && !event.readable) {
        CloseConnection(conn_id);
        continue;
      }
      if (event.readable) {
        HandleReadable(conn);
        if (conn->dead) {
          continue;  // closed during read
        }
      }
      if (event.writable) {
        FlushOutbox(conn);
      }
    }
    DrainCompletions();
    // Closed connections were only unlinked during the sweep; destroy them
    // (and release their fds) now that no event can still reference them.
    graveyard_.clear();
    if (stop_requested_.load() && !draining_) {
      draining_ = true;
      CloseListeners();
    }
    if (config_.checkpoint_interval_ms > 0 && !draining_ &&
        std::chrono::steady_clock::now() >= next_checkpoint_) {
      if (ingests_since_checkpoint_ > 0) {
        const Status checkpointed = DoCheckpoint(/*final=*/false);
        if (!checkpointed.ok()) {
          serving_error_ = checkpointed;
          break;
        }
      }
      next_checkpoint_ =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(config_.checkpoint_interval_ms);
    }
    if (draining_ && in_flight_.load() == 0) {
      // One more sweep: a worker may have published its last completion
      // between DrainCompletions above and the in_flight_ read.
      DrainCompletions();
      FinishShutdown();
      break;
    }
  }
  for (const std::unique_ptr<BoundedQueue>& queue : queues_) {
    queue->Close();
  }
}

void IngestServer::AcceptAll(int listener_fd) {
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // EAGAIN (drained) or a transient accept error
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->id = ++next_conn_id_;
    conn->fd.reset(fd);
    conn->worker = static_cast<int>(conn->id %
                                    static_cast<uint64_t>(
                                        config_.num_workers));
    if (!poller_.Add(fd, /*want_read=*/true, /*want_write=*/false).ok()) {
      continue;  // conn's FdGuard closes it
    }
    fd_to_conn_[fd] = conn->id;
    conns_[conn->id] = std::move(conn);
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.connections_accepted;
  }
}

void IngestServer::HandleReadable(Connection* conn) {
  char buffer[kReadChunkBytes];
  std::vector<std::string> frames;
  for (int round = 0; round < kMaxReadsPerEvent; ++round) {
    const ssize_t got = ::read(conn->fd.get(), buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      CloseConnection(conn->id);
      return;
    }
    if (got == 0) {
      CloseConnection(conn->id);
      return;
    }
    frames.clear();
    const Status fed = conn->parser.Feed(
        std::string_view(buffer, static_cast<size_t>(got)), &frames);
    for (std::string& payload : frames) {
      ProcessFrame(conn, std::move(payload));
      if (conn->dead) {
        return;  // a frame closed the connection
      }
    }
    if (!fed.ok()) {
      // Framing desync is unrecoverable on a byte stream: flush whatever
      // replies are pending and drop the connection.
      conn->closing = true;
      if (!conn->paused) {
        conn->paused = true;
        UpdateInterest(conn);
      }
      if (conn->outbox.empty()) {
        CloseConnection(conn->id);
      }
      return;
    }
    if (conn->paused || conn->closing) {
      return;  // backpressure kicked in mid-read
    }
  }
}

void IngestServer::ProcessFrame(Connection* conn, std::string payload) {
  const uint64_t seq = ++conn->frames_received;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_received;
  }
  // A payload that fails to classify is NOT a framing desync: the length
  // prefix parsed, so the stream is still synchronized and the damage is
  // confined to this payload — the signature of in-flight corruption that
  // hit the 3-byte magic. Route it through the ingest path like any batch:
  // IngestEncoded's header check fails with kDataLoss, the worker answers
  // kNack, and the sender retransmits the pristine bytes. Closing the
  // connection here would kill the retransmit protocol exactly when it is
  // needed (and SIGPIPE the sender mid-recovery).
  const Result<PayloadType> type = ClassifyPayload(payload);
  const PayloadType routed = type.ok() ? *type : PayloadType::kBatch;
  switch (routed) {
    case PayloadType::kBatch: {
      if (draining_) {
        Reply reply;
        reply.verdict = Verdict::kError;
        reply.seq = seq;
        reply.status = StatusCode::kFailedPrecondition;
        EnqueueReply(conn, reply);
        return;
      }
      WorkItem item;
      item.conn_id = conn->id;
      item.seq = seq;
      item.payload = std::move(payload);
      in_flight_.fetch_add(1);
      if (!queues_[static_cast<size_t>(conn->worker)]->TryPush(
              std::move(item))) {
        in_flight_.fetch_sub(1);
        Reply reply;
        reply.verdict = Verdict::kOverload;
        reply.seq = seq;
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.batches_overloaded;
        }
        EnqueueReply(conn, reply);
      }
      return;
    }
    case PayloadType::kControl: {
      const Result<ControlOp> op = DecodeControl(payload);
      Reply reply;
      reply.seq = seq;
      if (!op.ok()) {
        reply.verdict = Verdict::kError;
        reply.status = op.status().code();
        EnqueueReply(conn, reply);
        return;
      }
      if (*op == ControlOp::kCheckpoint) {
        const Status checkpointed =
            config_.checkpoint_path.empty()
                ? Status::FailedPrecondition(
                      "server has no checkpoint_path configured")
                : DoCheckpoint(/*final=*/false);
        if (checkpointed.ok()) {
          reply.verdict = Verdict::kAck;
        } else {
          reply.verdict = Verdict::kError;
          reply.status = checkpointed.code();
        }
        EnqueueReply(conn, reply);
        return;
      }
      // kShutdown: ack only after the drain, as this connection's final
      // frame — the sender knows the final checkpoint exists once it
      // reads the ack.
      draining_ = true;
      have_shutdown_ack_ = true;
      shutdown_ack_conn_ = conn->id;
      shutdown_ack_seq_ = seq;
      CloseListeners();
      return;
    }
    case PayloadType::kReply:
      // Clients answer, servers ask: a reply arriving here is a protocol
      // violation, not damage we can recover from.
      CloseConnection(conn->id);
      return;
  }
}

void IngestServer::EnqueueReply(Connection* conn, const Reply& reply) {
  if (conn->dead) {
    return;
  }
  FR_CHECK_OK(AppendFrame(EncodeReply(reply), &conn->outbox));
  FlushOutbox(conn);
}

void IngestServer::FlushOutbox(Connection* conn) {
  if (conn->dead) {
    return;
  }
  size_t offset = 0;
  while (offset < conn->outbox.size()) {
    const ssize_t written =
        ::send(conn->fd.get(), conn->outbox.data() + offset,
               conn->outbox.size() - offset, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      CloseConnection(conn->id);
      return;
    }
    offset += static_cast<size_t>(written);
  }
  conn->outbox.erase(0, offset);
  if (conn->outbox.empty() && conn->closing) {
    CloseConnection(conn->id);
    return;
  }
  // Backpressure: a connection that will not read its replies stops being
  // read itself until the outbox drains below the cap.
  const bool should_pause =
      conn->closing || conn->outbox.size() > config_.max_write_buffer_bytes;
  const bool should_write = !conn->outbox.empty();
  if (should_pause != conn->paused || should_write != conn->want_write) {
    conn->paused = should_pause;
    conn->want_write = should_write;
    UpdateInterest(conn);
  }
}

void IngestServer::UpdateInterest(Connection* conn) {
  (void)poller_.Update(conn->fd.get(), /*want_read=*/!conn->paused,
                       /*want_write=*/conn->want_write);
}

void IngestServer::CloseConnection(uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) {
    return;
  }
  Connection* conn = it->second.get();
  (void)poller_.Remove(conn->fd.get());
  fd_to_conn_.erase(conn->fd.get());
  // Deferred destruction: callers up the stack still hold `conn`, and the
  // open fd parks the number so the kernel cannot hand it to a new accept
  // within this sweep. The graveyard empties once per IoLoop iteration.
  conn->dead = true;
  graveyard_.push_back(std::move(it->second));
  conns_.erase(it);
  // Worker items for this connection may still be in flight; their
  // completions are dropped in DrainCompletions (lookup miss).
}

void IngestServer::DrainCompletions() {
  std::vector<Completion> drained;
  {
    const std::lock_guard<std::mutex> lock(completions_mutex_);
    drained.swap(completions_);
  }
  for (const Completion& completion : drained) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      switch (completion.reply.verdict) {
        case Verdict::kAck:
          ++stats_.batches_acked;
          break;
        case Verdict::kNack:
          ++stats_.batches_nacked;
          break;
        case Verdict::kError:
          ++stats_.batches_errored;
          break;
        case Verdict::kOverload:
          break;  // counted at enqueue time
      }
      stats_.records_applied += completion.reply.applied;
      stats_.records_deduped += completion.reply.deduped;
      stats_.records_out_of_window += completion.reply.out_of_window;
    }
    if (completion.acked_ingest) {
      ++ingests_since_checkpoint_;
    }
    const auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) {
      continue;  // connection died before its reply could be sent
    }
    EnqueueReply(it->second.get(), completion.reply);
  }
}

void IngestServer::CloseListeners() {
  for (FdGuard& listener : listeners_) {
    (void)poller_.Remove(listener.get());
    listener.reset();
  }
  listeners_.clear();
}

Status IngestServer::DoCheckpoint(bool final) {
  // Mirrors the runner's durable-chain policy: a full compaction blob
  // under kFull mode, for the first checkpoint of a chain, on the forced
  // final compaction, and every checkpoint_compact_every-th checkpoint;
  // a delta of the dirtied shards otherwise.
  int64_t taken;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    taken = stats_.checkpoints_taken;
  }
  const bool full =
      config_.checkpoint_mode == core::CheckpointMode::kFull ||
      !checkpoint_base_taken_ || final ||
      taken % config_.checkpoint_compact_every == 0;
  std::string blob;
  if (full) {
    FR_ASSIGN_OR_RETURN(blob,
                        aggregator_.Checkpoint(core::CheckpointMode::kFull));
  } else {
    FR_ASSIGN_OR_RETURN(
        blob, aggregator_.Checkpoint(core::CheckpointMode::kDelta));
  }
  std::string framed;
  FR_RETURN_NOT_OK(AppendFrame(blob, &framed));
  if (full) {
    FR_RETURN_NOT_OK(WriteFileAtomically(config_.checkpoint_path, framed));
    checkpoint_base_taken_ = true;
  } else {
    FR_RETURN_NOT_OK(AppendToFile(config_.checkpoint_path, framed));
  }
  ingests_since_checkpoint_ = 0;
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.checkpoints_taken;
  stats_.checkpoint_bytes += static_cast<int64_t>(blob.size());
  if (!full) {
    ++stats_.delta_checkpoints_taken;
    // checkpoint_bytes counts all blobs; the delta split mirrors
    // sim::DeliveryMetrics.
  }
  return Status::OK();
}

void IngestServer::FinishShutdown() {
  // Workers are drained and idle, so this compaction is a quiesced,
  // point-in-time snapshot — the one RestoreFromCheckpointFile callers
  // compare against.
  if (!config_.checkpoint_path.empty()) {
    const Status checkpointed = DoCheckpoint(/*final=*/true);
    if (!checkpointed.ok() && serving_error_.ok()) {
      serving_error_ = checkpointed;
    }
  }
  if (have_shutdown_ack_) {
    const auto it = conns_.find(shutdown_ack_conn_);
    if (it != conns_.end()) {
      Reply reply;
      reply.verdict = serving_error_.ok() ? Verdict::kAck : Verdict::kError;
      reply.seq = shutdown_ack_seq_;
      reply.status = serving_error_.code();
      FR_CHECK_OK(AppendFrame(EncodeReply(reply), &it->second->outbox));
    }
  }
  // Final flush: blocking writes so no queued reply (least of all the
  // shutdown ack) is lost to a full socket buffer.
  for (auto& [conn_id, conn] : conns_) {
    if (conn->outbox.empty()) {
      continue;
    }
    const int flags = ::fcntl(conn->fd.get(), F_GETFL, 0);
    if (flags >= 0) {
      (void)::fcntl(conn->fd.get(), F_SETFL, flags & ~O_NONBLOCK);
    }
    (void)WriteAll(conn->fd.get(), conn->outbox);
  }
  conns_.clear();
  fd_to_conn_.clear();
}

Status RestoreFromCheckpointFile(const std::string& path,
                                 core::ShardedAggregator* aggregator) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("cannot open checkpoint file " + path);
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  const bool read_ok = std::ferror(file) == 0;
  (void)std::fclose(file);
  if (!read_ok) {
    return Status::IoError("read " + path + " failed");
  }
  FrameParser parser;
  std::vector<std::string> blobs;
  FR_RETURN_NOT_OK(parser.Feed(contents, &blobs));
  if (parser.buffered_bytes() != 0) {
    return Status::DataLoss("checkpoint file " + path +
                            " ends mid-frame (torn write)");
  }
  if (blobs.empty()) {
    return Status::DataLoss("checkpoint file " + path + " holds no frames");
  }
  // Full base first, then every delta in order — exactly the runner's
  // replay discipline.
  for (const std::string& blob : blobs) {
    FR_RETURN_NOT_OK(aggregator->Restore(blob));
  }
  return Status::OK();
}

}  // namespace futurerand::net
