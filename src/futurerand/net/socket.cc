#include "futurerand/net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <vector>

namespace futurerand::net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

// IPv4 only, plus the spelling every test and script uses.
Result<in_addr> ResolveHost(const std::string& host) {
  const std::string spelled = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (inet_pton(AF_INET, spelled.c_str(), &addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host: " + host);
  }
  return addr;
}

Result<sockaddr_un> UnixAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path empty or too long: " +
                                   path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void FdGuard::reset(int fd) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = fd;
}

Result<TcpListener> ListenTcp(const std::string& host, int port,
                              int backlog) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range");
  }
  FR_ASSIGN_OR_RETURN(const in_addr addr, ResolveHost(host));
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoStatus("socket");
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr = addr;
  sin.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sin),
             sizeof(sin)) != 0) {
    return ErrnoStatus("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return ErrnoStatus("getsockname");
  }
  TcpListener listener;
  listener.fd = std::move(fd);
  listener.port = static_cast<int>(ntohs(bound.sin_port));
  return listener;
}

Result<FdGuard> ListenUnix(const std::string& path, int backlog) {
  FR_ASSIGN_OR_RETURN(const sockaddr_un addr, UnixAddress(path));
  // A stale socket file from a crashed server makes bind fail EADDRINUSE;
  // unlink it — a live server holds the listening socket, not the name.
  (void)::unlink(path.c_str());
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoStatus("socket");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return ErrnoStatus("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) {
    return ErrnoStatus("listen " + path);
  }
  return fd;
}

Result<FdGuard> ConnectTcp(const std::string& host, int port) {
  FR_ASSIGN_OR_RETURN(const in_addr addr, ResolveHost(host));
  FdGuard fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoStatus("socket");
  }
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr = addr;
  sin.sin_port = htons(static_cast<uint16_t>(port));
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sin),
                   sizeof(sin));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect " + host + ":" + std::to_string(port));
  }
  // The client ships small framed batches synchronously; Nagle would add
  // a round-trip of latency to every one.
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<FdGuard> ConnectUnix(const std::string& path) {
  FR_ASSIGN_OR_RETURN(const sockaddr_un addr, UnixAddress(path));
  FdGuard fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    return ErrnoStatus("socket");
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect " + path);
  }
  return fd;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl O_NONBLOCK");
  }
  return Status::OK();
}

Status WriteAll(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    // MSG_NOSIGNAL: a peer that closed mid-protocol must surface as an
    // EPIPE Status the caller can handle, not a process-killing SIGPIPE.
    const ssize_t written =
        ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("write");
    }
    bytes.remove_prefix(static_cast<size_t>(written));
  }
  return Status::OK();
}

Status ReadChunk(int fd, std::string* out, size_t chunk) {
  std::vector<char> buffer(chunk);
  for (;;) {
    const ssize_t got = ::read(fd, buffer.data(), buffer.size());
    if (got < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoStatus("read");
    }
    if (got == 0) {
      return Status::IoError("connection closed by peer");
    }
    out->append(buffer.data(), static_cast<size_t>(got));
    return Status::OK();
  }
}

}  // namespace futurerand::net
