#include "futurerand/net/client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "futurerand/sim/runner.h"

namespace futurerand::net {

namespace {

// Backoff between resends of an overloaded batch. The server answered
// immediately without consuming anything, so hammering it back-to-back
// only burns CPU on both sides.
constexpr std::chrono::milliseconds kOverloadBackoff(1);

}  // namespace

Result<StreamClient> StreamClient::ConnectTcp(const std::string& host,
                                              int port) {
  FR_ASSIGN_OR_RETURN(FdGuard fd, net::ConnectTcp(host, port));
  return StreamClient(std::move(fd));
}

Result<StreamClient> StreamClient::ConnectUnix(const std::string& path) {
  FR_ASSIGN_OR_RETURN(FdGuard fd, net::ConnectUnix(path));
  return StreamClient(std::move(fd));
}

Status StreamClient::Send(std::string_view payload) {
  std::string framed;
  framed.reserve(kFrameHeaderSize + payload.size());
  FR_RETURN_NOT_OK(AppendFrame(payload, &framed));
  FR_RETURN_NOT_OK(WriteAll(fd_.get(), framed));
  ++frames_sent_;
  return Status::OK();
}

Result<Reply> StreamClient::ReadReply() {
  while (pending_.empty()) {
    std::string chunk;
    FR_RETURN_NOT_OK(ReadChunk(fd_.get(), &chunk));
    FR_RETURN_NOT_OK(parser_.Feed(chunk, &pending_));
  }
  const std::string payload = std::move(pending_.front());
  pending_.erase(pending_.begin());
  FR_ASSIGN_OR_RETURN(const PayloadType type, ClassifyPayload(payload));
  if (type != PayloadType::kReply) {
    return Status::DataLoss(
        "expected a reply frame, got a different payload type");
  }
  return DecodeReply(payload);
}

Result<Reply> StreamClient::Call(std::string_view payload) {
  FR_RETURN_NOT_OK(Send(payload));
  const uint64_t seq = frames_sent_;
  FR_ASSIGN_OR_RETURN(Reply reply, ReadReply());
  if (reply.seq != seq) {
    return Status::DataLoss("reply sequence mismatch: sent frame " +
                            std::to_string(seq) + ", reply answers frame " +
                            std::to_string(reply.seq));
  }
  return reply;
}

Status StreamClient::SendControl(ControlOp op) {
  FR_ASSIGN_OR_RETURN(const Reply reply, Call(EncodeControl(op)));
  if (reply.verdict == Verdict::kAck) {
    return Status::OK();
  }
  return Status(reply.status,
                std::string("control request rejected by server: ") +
                    StatusCodeToString(reply.status));
}

Status DeliverEncodedOverStream(StreamClient& client,
                                const std::string& pristine,
                                sim::ChannelModel* channel,
                                core::WireVersion wire_version,
                                int64_t retransmit_budget,
                                sim::DeliveryMetrics* delivery) {
  const bool can_corrupt =
      channel != nullptr && channel->config().can_corrupt();
  // Mirrors the attempt body of sim::DeliverEncodedWithRetransmission,
  // with the server's reply standing in for the local ingest Status.
  auto attempt = [&]() -> Result<bool> {
    bool oracle_corrupted = false;
    const std::string* to_send = &pristine;
    std::string bytes;
    if (can_corrupt) {
      // Corruption mutates a copy so the pristine bytes stay available
      // for a retransmission; skip the copy when no fault can occur.
      bytes = pristine;
      oracle_corrupted = channel->MaybeCorrupt(&bytes);
      to_send = &bytes;
    }
    Reply reply;
    for (;;) {
      FR_ASSIGN_OR_RETURN(reply, client.Call(*to_send));
      if (reply.verdict != Verdict::kOverload) {
        break;
      }
      // Overload consumed nothing: resend the SAME bytes without a new
      // channel draw, so backpressure never perturbs the fault sequence.
      std::this_thread::sleep_for(kOverloadBackoff);
    }
    delivery->records_applied += reply.applied;
    delivery->records_deduped += reply.deduped;
    delivery->records_out_of_window += reply.out_of_window;
    if (reply.verdict == Verdict::kAck) {
      return true;
    }
    if (reply.status == StatusCode::kDataLoss) {
      ++delivery->batches_checksum_rejected;
    }
    const bool nack = wire_version == core::WireVersion::kV2
                          ? reply.status == StatusCode::kDataLoss
                          : oracle_corrupted;
    if (!nack) {
      return Status(reply.status,
                    std::string("server rejected batch: ") +
                        StatusCodeToString(reply.status));
    }
    return false;
  };
  return sim::RetransmitLoop(retransmit_budget, attempt, delivery);
}

}  // namespace futurerand::net
