// FRS: length-prefixed stream framing for FRW payloads over a byte stream
// (TCP or Unix domain sockets).
//
// The FRW wire format (core/wire.h) encodes self-contained batches; a byte
// stream needs one more layer to find batch boundaries across short reads
// and partial writes. An FRS frame is
//
//   [u32 payload length, little-endian][payload bytes]
//
// with the length validated against kFrsMaxPayload BEFORE any payload
// memory is reserved, so a hostile 4-byte header cannot make the receiver
// allocate gigabytes. A zero or oversized length is unrecoverable — the
// stream has lost sync — so FrameParser fails sticky with kDataLoss and
// the connection must be dropped.
//
// Three payload families ride inside frames, distinguished by their magic:
//
//   'F','R','W'  a batch (core/wire.h kinds; the service ingests 1/2/6/7)
//   'F','R','A'  a reply: the receiver's per-batch verdict (ack / NACK /
//                overload / error) plus its ingest outcome counts, echoing
//                the per-connection sequence number of the batch it answers
//   'F','R','C'  a control request (checkpoint now / shutdown), acked with
//                a reply frame like any batch
//
// Corruption model: the frame header and reply/control payloads carry no
// checksum — the stream transport (TCP) is assumed byte-reliable, and the
// fault simulation corrupts the FRW payload before framing, exactly where
// a v2 batch's own FNV-1a trailer detects it (kDataLoss -> verdict kNack).
//
// docs/FORMATS.md §12 is the normative byte layout; the kFrs* constants
// below are kept in lockstep with it by scripts/check_format_spec.sh.
//
// Thread-safety: free functions are pure; FrameParser is not thread-safe
// (one parser per connection).

#ifndef FUTURERAND_NET_FRAME_H_
#define FUTURERAND_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "futurerand/common/result.h"

namespace futurerand::net {

/// Bytes of the frame length prefix (u32 little-endian).
inline constexpr size_t kFrameHeaderSize = 4;

/// Hard cap on a frame payload. A length header above this is rejected as
/// kDataLoss before any allocation happens.
inline constexpr uint32_t kFrsMaxPayload = 64u << 20;  // 64 MiB

/// Payload format versions and enum byte values (normative, append-only;
/// docs/FORMATS.md §12). The "// FRS" annotation is what
/// scripts/check_format_spec.sh keys on.
inline constexpr char kFrsReplyVersion = 1;       // FRS
inline constexpr char kFrsControlVersion = 1;     // FRS
inline constexpr char kFrsVerdictAck = 0;         // FRS
inline constexpr char kFrsVerdictNack = 1;        // FRS
inline constexpr char kFrsVerdictOverload = 2;    // FRS
inline constexpr char kFrsVerdictError = 3;       // FRS
inline constexpr char kFrsControlCheckpoint = 1;  // FRS
inline constexpr char kFrsControlShutdown = 2;    // FRS

/// What a frame payload is, decided from its 3-byte magic.
enum class PayloadType {
  kBatch,    // 'F','R','W' — core/wire.h framing
  kReply,    // 'F','R','A'
  kControl,  // 'F','R','C'
};

/// Classifies a payload by magic without decoding it. Fails with kDataLoss
/// on an unknown magic (the stream is delivering garbage) and
/// kInvalidArgument on input shorter than a magic.
Result<PayloadType> ClassifyPayload(std::string_view payload);

/// The receiver's per-batch verdict, one reply frame per batch/control
/// frame, in per-connection FIFO order.
enum class Verdict : uint8_t {
  kAck = kFrsVerdictAck,            // applied; outcome counts are valid
  kNack = kFrsVerdictNack,          // rejected as corrupt (kDataLoss):
                                    // retransmit the same pristine bytes
  kOverload = kFrsVerdictOverload,  // worker queue full, nothing consumed:
                                    // resend the SAME bytes later
  kError = kFrsVerdictError,        // rejected for a non-retryable reason
                                    // (status carries the code)
};

/// One reply payload: [F R A][version][verdict][varint seq]
/// [varint status code][varint applied][varint deduped]
/// [varint out_of_window].
struct Reply {
  Verdict verdict = Verdict::kAck;
  /// Echoes the 1-based per-connection sequence number of the frame this
  /// reply answers.
  uint64_t seq = 0;
  /// The receiver-side Status code behind a kNack/kError verdict
  /// (kDataLoss for every NACK); kOk for kAck and kOverload.
  StatusCode status = StatusCode::kOk;
  // The receiver's core::IngestOutcome for the answered batch. All zero
  // for kOverload (nothing was consumed) and for an atomically rejected
  // v2 batch.
  int64_t applied = 0;
  int64_t deduped = 0;
  int64_t out_of_window = 0;

  friend bool operator==(const Reply&, const Reply&) = default;
};

std::string EncodeReply(const Reply& reply);

/// Parses a reply payload; rejects bad magic/version/verdict (kDataLoss),
/// truncation, overlong varints and trailing bytes (kInvalidArgument).
Result<Reply> DecodeReply(std::string_view payload);

/// One control payload: [F R C][version][op].
enum class ControlOp : uint8_t {
  kCheckpoint = kFrsControlCheckpoint,  // checkpoint to the server's
                                        // configured path now
  kShutdown = kFrsControlShutdown,      // drain, final checkpoint, exit;
                                        // the ack is the last frame sent
};

std::string EncodeControl(ControlOp op);

/// Parses a control payload; same error contract as DecodeReply.
Result<ControlOp> DecodeControl(std::string_view payload);

/// Appends [u32 LE length][payload] to `*out`. Fails (appending nothing)
/// on an empty payload or one above kFrsMaxPayload — both unrepresentable
/// on a stream the peer will accept.
Status AppendFrame(std::string_view payload, std::string* out);

/// Incremental frame extractor for one stream direction. Feed whatever the
/// socket produced — any split, down to one byte at a time — and complete
/// payloads come out in order. A zero or oversized length header is
/// detected as soon as its 4 bytes have arrived, before any payload buffer
/// is reserved, and the parser fails sticky: every later Feed returns the
/// same kDataLoss, because a byte stream that framed garbage cannot be
/// resynchronized — close the connection.
class FrameParser {
 public:
  FrameParser() = default;
  /// `max_payload` tightens the oversize bound below kFrsMaxPayload
  /// (tests; a server enforcing a smaller batch cap).
  explicit FrameParser(uint32_t max_payload) : max_payload_(max_payload) {}

  /// Consumes `bytes`, appending every completed payload to `*frames`
  /// (which is NOT cleared — frames accumulate across calls).
  Status Feed(std::string_view bytes, std::vector<std::string>* frames);

  /// Bytes buffered toward the next incomplete frame (0 when aligned on a
  /// frame boundary).
  size_t buffered_bytes() const { return header_fill_ + payload_.size(); }

 private:
  Status error_;  // sticky; OK until the stream desyncs
  uint32_t max_payload_ = kFrsMaxPayload;
  unsigned char header_[kFrameHeaderSize] = {0};
  size_t header_fill_ = 0;   // header bytes collected so far
  bool in_payload_ = false;  // header complete, collecting payload_
  uint32_t expected_ = 0;    // payload length from the header
  std::string payload_;
};

}  // namespace futurerand::net

#endif  // FUTURERAND_NET_FRAME_H_
