// Readiness notification for the single-threaded IO loop: epoll on Linux,
// poll(2) everywhere else (and on Linux when forced, so the fallback stays
// tested). One Poller instance belongs to one thread; nothing here is
// thread-safe.

#ifndef FUTURERAND_NET_POLLER_H_
#define FUTURERAND_NET_POLLER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "futurerand/common/result.h"
#include "futurerand/net/socket.h"

namespace futurerand::net {

/// One readiness event for a registered fd.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Error or hangup: the connection is dead, close it. May coincide with
  /// readable (pending bytes before the FIN).
  bool hangup = false;
};

/// fd registry + wait loop. Interest is level-triggered in both backends:
/// a readable fd keeps firing until drained, a writable one until the
/// write interest is dropped.
class Poller {
 public:
  /// Picks epoll where available unless `force_poll`; never fails into a
  /// backend the platform lacks.
  static Result<Poller> Create(bool force_poll = false);

  Poller(Poller&&) = default;
  Poller& operator=(Poller&&) = default;
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  Status Add(int fd, bool want_read, bool want_write);
  Status Update(int fd, bool want_read, bool want_write);
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever) and fills `*events` (cleared
  /// first). Returns the number of events (0 = timeout).
  Result<int> Wait(std::vector<PollEvent>* events, int timeout_ms);

  bool using_epoll() const { return epoll_fd_.valid(); }

 private:
  Poller() = default;

  FdGuard epoll_fd_;  // invalid => poll(2) fallback
  // Fallback interest list: (fd, mask of kReadInterest|kWriteInterest).
  static constexpr uint32_t kReadInterest = 1;
  static constexpr uint32_t kWriteInterest = 2;
  std::vector<std::pair<int, uint32_t>> interest_;
};

}  // namespace futurerand::net

#endif  // FUTURERAND_NET_POLLER_H_
