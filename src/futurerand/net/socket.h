// Thin POSIX socket helpers for the ingestion service: RAII fd ownership,
// TCP/Unix-domain listeners and connectors, and the blocking read/write
// loops the synchronous client uses. All calls retry EINTR; errors come
// back as Status (kIoError with errno text), never exceptions.

#ifndef FUTURERAND_NET_SOCKET_H_
#define FUTURERAND_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "futurerand/common/result.h"

namespace futurerand::net {

/// Owns one file descriptor; closes it on destruction. Movable, not
/// copyable.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { reset(); }

  FdGuard(FdGuard&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Releases ownership without closing.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held fd (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A bound-and-listening TCP socket plus the port it actually bound
/// (resolved when the caller asked for port 0).
struct TcpListener {
  FdGuard fd;
  int port = 0;
};

/// Listens on `host:port` (IPv4 dotted quad, or "localhost"). Port 0 picks
/// an ephemeral port, reported back in the result.
Result<TcpListener> ListenTcp(const std::string& host, int port,
                              int backlog = 128);

/// Listens on a Unix domain socket at `path`, unlinking any stale socket
/// file first. The path must fit sockaddr_un (~107 bytes).
Result<FdGuard> ListenUnix(const std::string& path, int backlog = 128);

Result<FdGuard> ConnectTcp(const std::string& host, int port);

Result<FdGuard> ConnectUnix(const std::string& path);

/// Switches `fd` to non-blocking mode.
Status SetNonBlocking(int fd);

/// Blocking write of the whole buffer, looping over partial writes.
Status WriteAll(int fd, std::string_view bytes);

/// Blocking read of at least one byte, appended to `*out` (up to `chunk`
/// bytes per call). Fails with kIoError on error and on clean EOF — the
/// FRS protocol never half-closes mid-conversation.
Status ReadChunk(int fd, std::string* out, size_t chunk = 1 << 16);

}  // namespace futurerand::net

#endif  // FUTURERAND_NET_SOCKET_H_
