#include "futurerand/net/frame.h"

#include <algorithm>
#include <cstring>

#include "futurerand/core/wire.h"

namespace futurerand::net {

namespace {

using core::wire_internal::GetVarint64;
using core::wire_internal::PutVarint64;

constexpr char kMagic0 = 'F';
constexpr char kMagic1 = 'R';
constexpr char kMagicBatch = 'W';
constexpr char kMagicReply = 'A';
constexpr char kMagicControl = 'C';

constexpr size_t kMagicSize = 3;

// The largest StatusCode value a reply may carry (status.h is append-only).
constexpr uint64_t kMaxStatusCode = static_cast<uint64_t>(StatusCode::kDataLoss);

Status ConsumeMagicVersion(char magic2, char version,
                           std::string_view* payload) {
  if (payload->size() < kMagicSize + 1) {
    return Status::InvalidArgument("FRS payload shorter than its header");
  }
  if ((*payload)[0] != kMagic0 || (*payload)[1] != kMagic1 ||
      (*payload)[2] != magic2) {
    return Status::DataLoss("FRS payload magic mismatch");
  }
  if ((*payload)[3] != version) {
    return Status::DataLoss("unsupported FRS payload version");
  }
  payload->remove_prefix(kMagicSize + 1);
  return Status::OK();
}

Status RejectTrailing(std::string_view payload) {
  if (!payload.empty()) {
    return Status::InvalidArgument("trailing bytes after FRS payload");
  }
  return Status::OK();
}

}  // namespace

Result<PayloadType> ClassifyPayload(std::string_view payload) {
  if (payload.size() < kMagicSize) {
    return Status::InvalidArgument("FRS payload shorter than a magic");
  }
  if (payload[0] != kMagic0 || payload[1] != kMagic1) {
    return Status::DataLoss("FRS payload magic mismatch");
  }
  switch (payload[2]) {
    case kMagicBatch:
      return PayloadType::kBatch;
    case kMagicReply:
      return PayloadType::kReply;
    case kMagicControl:
      return PayloadType::kControl;
    default:
      return Status::DataLoss("unknown FRS payload magic");
  }
}

std::string EncodeReply(const Reply& reply) {
  std::string out;
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kMagicReply);
  out.push_back(kFrsReplyVersion);
  out.push_back(static_cast<char>(reply.verdict));
  PutVarint64(reply.seq, &out);
  PutVarint64(static_cast<uint64_t>(reply.status), &out);
  PutVarint64(static_cast<uint64_t>(reply.applied), &out);
  PutVarint64(static_cast<uint64_t>(reply.deduped), &out);
  PutVarint64(static_cast<uint64_t>(reply.out_of_window), &out);
  return out;
}

Result<Reply> DecodeReply(std::string_view payload) {
  FR_RETURN_NOT_OK(ConsumeMagicVersion(kMagicReply, kFrsReplyVersion,
                                       &payload));
  if (payload.empty()) {
    return Status::InvalidArgument("FRS reply truncated before verdict");
  }
  const auto verdict_byte = static_cast<unsigned char>(payload[0]);
  payload.remove_prefix(1);
  if (verdict_byte > static_cast<unsigned char>(Verdict::kError)) {
    return Status::DataLoss("unknown FRS reply verdict");
  }
  Reply reply;
  reply.verdict = static_cast<Verdict>(verdict_byte);
  FR_ASSIGN_OR_RETURN(reply.seq, GetVarint64(&payload));
  FR_ASSIGN_OR_RETURN(const uint64_t code, GetVarint64(&payload));
  if (code > kMaxStatusCode) {
    return Status::DataLoss("unknown FRS reply status code");
  }
  reply.status = static_cast<StatusCode>(code);
  FR_ASSIGN_OR_RETURN(const uint64_t applied, GetVarint64(&payload));
  FR_ASSIGN_OR_RETURN(const uint64_t deduped, GetVarint64(&payload));
  FR_ASSIGN_OR_RETURN(const uint64_t out_of_window, GetVarint64(&payload));
  // Outcome counts are nonnegative int64s on the sender; anything that
  // does not fit back is stream damage, not a count.
  if (applied > static_cast<uint64_t>(INT64_MAX) ||
      deduped > static_cast<uint64_t>(INT64_MAX) ||
      out_of_window > static_cast<uint64_t>(INT64_MAX)) {
    return Status::DataLoss("FRS reply outcome count out of range");
  }
  reply.applied = static_cast<int64_t>(applied);
  reply.deduped = static_cast<int64_t>(deduped);
  reply.out_of_window = static_cast<int64_t>(out_of_window);
  FR_RETURN_NOT_OK(RejectTrailing(payload));
  return reply;
}

std::string EncodeControl(ControlOp op) {
  std::string out;
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kMagicControl);
  out.push_back(kFrsControlVersion);
  out.push_back(static_cast<char>(op));
  return out;
}

Result<ControlOp> DecodeControl(std::string_view payload) {
  FR_RETURN_NOT_OK(ConsumeMagicVersion(kMagicControl, kFrsControlVersion,
                                       &payload));
  if (payload.empty()) {
    return Status::InvalidArgument("FRS control truncated before op");
  }
  const auto op = static_cast<unsigned char>(payload[0]);
  payload.remove_prefix(1);
  FR_RETURN_NOT_OK(RejectTrailing(payload));
  if (op != static_cast<unsigned char>(ControlOp::kCheckpoint) &&
      op != static_cast<unsigned char>(ControlOp::kShutdown)) {
    return Status::DataLoss("unknown FRS control op");
  }
  return static_cast<ControlOp>(op);
}

Status AppendFrame(std::string_view payload, std::string* out) {
  if (payload.empty()) {
    return Status::InvalidArgument("FRS frames cannot carry empty payloads");
  }
  if (payload.size() > kFrsMaxPayload) {
    return Status::InvalidArgument(
        "FRS payload exceeds kFrsMaxPayload (" +
        std::to_string(payload.size()) + " bytes)");
  }
  const auto length = static_cast<uint32_t>(payload.size());
  out->push_back(static_cast<char>(length & 0xff));
  out->push_back(static_cast<char>((length >> 8) & 0xff));
  out->push_back(static_cast<char>((length >> 16) & 0xff));
  out->push_back(static_cast<char>((length >> 24) & 0xff));
  out->append(payload);
  return Status::OK();
}

Status FrameParser::Feed(std::string_view bytes,
                         std::vector<std::string>* frames) {
  if (!error_.ok()) {
    return error_;
  }
  while (!bytes.empty()) {
    if (!in_payload_) {
      const size_t take =
          std::min(bytes.size(), kFrameHeaderSize - header_fill_);
      std::memcpy(header_ + header_fill_, bytes.data(), take);
      header_fill_ += take;
      bytes.remove_prefix(take);
      if (header_fill_ < kFrameHeaderSize) {
        return Status::OK();  // short read mid-header; wait for more
      }
      const uint32_t length = static_cast<uint32_t>(header_[0]) |
                              (static_cast<uint32_t>(header_[1]) << 8) |
                              (static_cast<uint32_t>(header_[2]) << 16) |
                              (static_cast<uint32_t>(header_[3]) << 24);
      if (length == 0) {
        error_ = Status::DataLoss("zero-length FRS frame");
        return error_;
      }
      if (length > max_payload_) {
        // Reject before reserving anything: the header is all an attacker
        // controls cheaply, and it must not size our allocations.
        error_ = Status::DataLoss(
            "oversized FRS frame length " + std::to_string(length) +
            " (max " + std::to_string(max_payload_) + ")");
        return error_;
      }
      in_payload_ = true;
      expected_ = length;
      payload_.clear();
      payload_.reserve(length);
    }
    const size_t take = std::min(
        bytes.size(), static_cast<size_t>(expected_) - payload_.size());
    payload_.append(bytes.data(), take);
    bytes.remove_prefix(take);
    if (payload_.size() == expected_) {
      frames->push_back(std::move(payload_));
      payload_ = std::string();
      in_payload_ = false;
      header_fill_ = 0;
      expected_ = 0;
    }
  }
  return Status::OK();
}

}  // namespace futurerand::net
