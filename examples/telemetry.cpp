// App-telemetry scenario (the Microsoft/Ding-et-al. setting cited in the
// paper): a vendor tracks how many installations have a feature enabled,
// every hour over a 512-hour window. Rollouts happen in bursts (a staged
// deployment), so user values change rarely but in a correlated window —
// exactly the k-sparse longitudinal regime. The example also demonstrates
// the privacy accountant: our protocol charges each device once, while the
// naive hourly randomized response exhausts the same budget after the
// first hours if charged per report at a fixed one-shot rate.

#include <cstdio>

#include "futurerand/common/macros.h"
#include "futurerand/core/accountant.h"
#include "futurerand/sim/runner.h"
#include "futurerand/sim/trace.h"
#include "futurerand/sim/workload.h"

int main(int argc, char** argv) {
  using namespace futurerand;

  sim::WorkloadConfig population;
  population.kind = sim::WorkloadKind::kBursty;
  population.num_users = 40000;
  population.num_periods = 512;
  population.max_changes = 4;
  population.param = 0.0625;  // rollout window: 32 hours
  const sim::Workload workload =
      sim::Workload::Generate(population, 99).ValueOrDie();

  core::ProtocolConfig config;
  config.num_periods = population.num_periods;
  config.max_changes = population.max_changes;
  config.epsilon = 0.5;
  // Small k: let the library pick the best certified randomizer.
  config.randomizer = rand::RandomizerKind::kAdaptive;

  const sim::RunResult adaptive =
      sim::RunProtocol(sim::ProtocolKind::kAdaptive, config, workload, 11)
          .ValueOrDie();
  const sim::RunResult naive =
      sim::RunProtocol(sim::ProtocolKind::kNaiveRR, config, workload, 11)
          .ValueOrDie();

  std::printf("Feature-flag tracking, %lld devices, %lld hours, eps=%.2f:\n",
              static_cast<long long>(population.num_users),
              static_cast<long long>(population.num_periods), config.epsilon);
  std::printf("  adaptive hierarchical protocol : %s\n",
              adaptive.metrics.ToString().c_str());
  std::printf("  naive hourly RR (eps/d each)   : %s\n",
              naive.metrics.ToString().c_str());
  std::printf("  -> %.1fx lower worst-hour error\n\n",
              naive.metrics.max_abs / adaptive.metrics.max_abs);

  // Privacy accounting for one device under both policies.
  core::PrivacyAccountant accountant(config.epsilon);
  FR_CHECK_OK(accountant.Charge(/*user_id=*/1, config.epsilon));
  std::printf(
      "Accountant, hierarchical policy: one charge of eps=%.2f for the\n"
      "whole window; remaining budget %.2f.\n",
      config.epsilon, accountant.Remaining(1));

  core::PrivacyAccountant per_report_accountant(config.epsilon);
  const double one_shot_rate = config.epsilon / 16.0;  // a "reasonable"
  int hours_until_exhausted = 0;                       // per-report spend
  while (per_report_accountant.Charge(2, one_shot_rate).ok()) {
    ++hours_until_exhausted;
  }
  std::printf(
      "Accountant, per-report policy at eps/16 per hour: budget exhausted\n"
      "after %d hours of a %lld-hour window — the decay the paper's\n"
      "introduction warns about.\n",
      hours_until_exhausted,
      static_cast<long long>(population.num_periods));

  // Optional trace export: `telemetry /tmp/flags.csv` records the run in
  // the t,truth,estimate,abs_error shape, which doubles as a replay
  // workload — `frsim --workload=replay --replay=/tmp/flags.csv`
  // reproduces this rollout's exact hourly counts under any protocol.
  if (argc > 1) {
    FR_CHECK_OK(sim::WriteRunCsv(argv[1], adaptive, workload));
    std::printf("\ntrace written to %s (replay it with frsim "
                "--workload=replay --replay=%s)\n", argv[1], argv[1]);
  }
  return 0;
}
