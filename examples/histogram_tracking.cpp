// Richer-domain extension: longitudinal histogram over a categorical
// domain via the one-hot + coordinate-sampling reduction (the adaptation
// the paper points to for frequency estimation beyond Boolean data).
//
// Scenario: 80k users each have a "default search engine" among 8 options;
// a browser vendor tracks the market share over 64 weeks while a
// competitor's campaign shifts users between options.

#include <cstdio>
#include <string>
#include <vector>

#include "futurerand/common/macros.h"
#include "futurerand/common/random.h"
#include "futurerand/domain/histogram.h"

int main() {
  using namespace futurerand;

  domain::HistogramConfig config;
  config.domain_size = 8;
  config.boolean_config.num_periods = 64;
  config.boolean_config.max_changes = 3;  // incl. the initial selection
  config.boolean_config.epsilon = 1.0;
  config.boolean_config.randomizer = rand::RandomizerKind::kAdaptive;

  domain::HistogramServer server =
      domain::HistogramServer::Create(config).ValueOrDie();

  constexpr int64_t kUsers = 80000;
  constexpr int64_t kWeeks = 64;
  Rng rng(555);

  // Truth: everyone starts on engine 0..7 (zipf-ish); between weeks 24 and
  // 40, 30% of engine-0 users migrate to engine 3.
  std::vector<std::vector<int64_t>> user_items(
      kUsers, std::vector<int64_t>(kWeeks + 1, 0));
  std::vector<std::vector<int64_t>> truth(
      kWeeks + 1, std::vector<int64_t>(config.domain_size, 0));
  for (int64_t u = 0; u < kUsers; ++u) {
    const int64_t initial = static_cast<int64_t>(rng.NextInt(16)) % 8;
    const bool migrates = initial == 0 && rng.NextBernoulli(0.3);
    const int64_t migration_week =
        24 + static_cast<int64_t>(rng.NextInt(16));
    for (int64_t t = 1; t <= kWeeks; ++t) {
      const int64_t item =
          (migrates && t >= migration_week) ? 3 : initial;
      user_items[static_cast<size_t>(u)][static_cast<size_t>(t)] = item;
      ++truth[static_cast<size_t>(t)][static_cast<size_t>(item)];
    }
  }

  // Run the protocol: one histogram client per user.
  for (int64_t u = 0; u < kUsers; ++u) {
    domain::HistogramClient client =
        domain::HistogramClient::Create(config,
                                        static_cast<uint64_t>(u) + 1)
            .ValueOrDie();
    FR_CHECK_OK(
        server.RegisterClient(u, client.coordinate(), client.level()));
    for (int64_t t = 1; t <= kWeeks; ++t) {
      const auto report = client.ObserveItem(
          user_items[static_cast<size_t>(u)][static_cast<size_t>(t)]);
      FR_CHECK_OK(report.status());
      if (report->has_value()) {
        FR_CHECK_OK(server.SubmitReport(u, t, **report));
      }
    }
  }

  for (int64_t week : {int64_t{8}, int64_t{32}, int64_t{64}}) {
    const std::vector<double> histogram =
        server.EstimateHistogramAt(week).ValueOrDie();
    std::printf("Week %2lld market share (true -> estimated):\n",
                static_cast<long long>(week));
    for (int64_t item = 0; item < config.domain_size; ++item) {
      std::printf("  engine %lld : %6lld -> %8.0f\n",
                  static_cast<long long>(item),
                  static_cast<long long>(
                      truth[static_cast<size_t>(week)]
                           [static_cast<size_t>(item)]),
                  histogram[static_cast<size_t>(item)]);
    }
    std::printf("\n");
  }
  std::printf(
      "The engine-0 decline and engine-3 rise between weeks 8 and 64 are\n"
      "visible in the private estimates; each user sent one Boolean report\n"
      "stream and spent eps=%.1f total.\n",
      config.boolean_config.epsilon);
  return 0;
}
