// Quickstart: track how many of n users have a Boolean flag set, at every
// one of d time periods, under eps-local differential privacy — using the
// batch-first service API that the production pipeline runs on:
//
//   ClientFleet (devices)  ->  wire bytes  ->  ShardedAggregator  ->  query
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "futurerand/common/macros.h"
#include "futurerand/core/aggregator.h"
#include "futurerand/core/config.h"
#include "futurerand/core/fleet.h"
#include "futurerand/core/wire.h"

int main() {
  using futurerand::core::ClientFleet;
  using futurerand::core::ProtocolConfig;
  using futurerand::core::ReportBatch;
  using futurerand::core::ShardedAggregator;

  // 1. Agree on the deployment parameters (shared by clients and server).
  //    Scenario: tracking adoption of a new feature — each user enables it
  //    at most once (k = 1), and we want the adoption curve over 64 periods.
  ProtocolConfig config;
  config.num_periods = 64;  // d: length of the tracking window (power of 2)
  config.max_changes = 1;   // k: the flag flips at most once per user
  config.epsilon = 1.0;     // total LDP budget per user, for ALL d periods
  // Let the library choose the certified randomizer with the best utility
  // for this (k, eps); at k = 1 that is the independent composition, at
  // large k it is FutureRand.
  config.randomizer = futurerand::rand::RandomizerKind::kAdaptive;

  // 2. A ClientFleet owns every device's state machine in batch form. In a
  //    real deployment each Client runs on its own device; the fleet is the
  //    same state machine, advanced for all n users with one call per
  //    period (bit-identical to n per-client calls).
  const int64_t kUsers = 200000;
  ClientFleet fleet =
      ClientFleet::Create(config, kUsers, /*base_seed=*/1000).ValueOrDie();

  // 3. The service side is a ShardedAggregator: a thread-safe façade over
  //    K Server shards keyed by client id. It ingests whole batches —
  //    decoded messages or raw wire bytes — and any shard count gives
  //    bit-identical estimates.
  ShardedAggregator aggregator =
      ShardedAggregator::ForProtocol(config, /*num_shards=*/4).ValueOrDie();

  // Registration ships once, as one encoded batch of (id, level) pairs.
  FR_CHECK_OK(aggregator.IngestEncoded(
      futurerand::core::EncodeRegistrationBatch(fleet.registrations())));

  // 4. Stream: at each period every user feeds its current flag value; the
  //    fleet decides which clients owe a (randomized) one-bit report and
  //    packs them into one batch, which travels as compact wire bytes.
  //    Synthetic truth here: user u adopts the feature at period u%96+1
  //    (staggered rollout), so adoption ramps up over the window.
  std::vector<int8_t> flags(kUsers, 0);
  ReportBatch batch;
  for (int64_t t = 1; t <= config.num_periods; ++t) {
    int64_t true_count = 0;
    for (int64_t u = 0; u < kUsers; ++u) {
      flags[static_cast<size_t>(u)] = t >= (u % 96) + 1 ? 1 : 0;
      true_count += flags[static_cast<size_t>(u)];
    }
    FR_CHECK_OK(fleet.AdvanceTick(flags, &batch));
    const auto bytes = futurerand::core::EncodeReportBatch(batch);
    FR_CHECK_OK(bytes.status());
    FR_CHECK_OK(aggregator.IngestEncoded(*bytes));

    // 5. Online estimates are available immediately at every period; each
    //    query lazily re-merges the shards, so this demo samples every 8th.
    if (t % 8 == 0) {
      const double estimate = aggregator.EstimateAt(t).ValueOrDie();
      std::printf("t=%3lld   true=%6lld   estimate=%9.1f   error=%7.1f   "
                  "(%zu reports, %zu wire bytes)\n",
                  static_cast<long long>(t),
                  static_cast<long long>(true_count), estimate,
                  estimate - static_cast<double>(true_count), batch.size(),
                  bytes->size());
    }
  }

  // Window queries come straight off the same aggregator.
  const double late_adoption =
      aggregator.EstimateWindowDelta(33, 64).ValueOrDie();
  std::printf(
      "\nestimated net adoption in the second half of the window: %.1f\n"
      "Each user sent at most d/2^h one-bit reports and spent exactly\n"
      "eps=%.1f of privacy budget for the whole 64-period window.\n",
      late_adoption, config.epsilon);
  return 0;
}
