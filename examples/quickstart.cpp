// Quickstart: track how many of n users have a Boolean flag set, at every
// one of d time periods, under eps-local differential privacy.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "futurerand/common/macros.h"
#include "futurerand/core/client.h"
#include "futurerand/core/config.h"
#include "futurerand/core/server.h"

int main() {
  using futurerand::core::Client;
  using futurerand::core::ProtocolConfig;
  using futurerand::core::Server;

  // 1. Agree on the deployment parameters (shared by clients and server).
  //    Scenario: tracking adoption of a new feature — each user enables it
  //    at most once (k = 1), and we want the adoption curve over 64 periods.
  ProtocolConfig config;
  config.num_periods = 64;  // d: length of the tracking window (power of 2)
  config.max_changes = 1;   // k: the flag flips at most once per user
  config.epsilon = 1.0;     // total LDP budget per user, for ALL d periods
  // Let the library choose the certified randomizer with the best utility
  // for this (k, eps); at k = 1 that is the independent composition, at
  // large k it is FutureRand.
  config.randomizer = futurerand::rand::RandomizerKind::kAdaptive;

  // 2. The server is stateless apart from O(d) counters.
  Server server = Server::ForProtocol(config).ValueOrDie();

  // 3. Each user runs a Client on-device. On creation it samples a level
  //    h_u (public) and pre-computes its noise; registration sends only
  //    the level.
  const int kUsers = 200000;
  std::vector<Client> clients;
  clients.reserve(kUsers);
  for (int u = 0; u < kUsers; ++u) {
    clients.push_back(
        Client::Create(config, /*seed=*/1000 + static_cast<uint64_t>(u))
            .ValueOrDie());
    FR_CHECK_OK(server.RegisterClient(u, clients.back().level()));
  }

  // 4. Stream: at each period every user feeds its current flag value; the
  //    client decides when a (randomized) one-bit report is due.
  //    Synthetic truth here: user u adopts the feature at period u%96+1
  //    (staggered rollout), so adoption ramps up over the window.
  int64_t true_count_final = 0;
  for (int64_t t = 1; t <= config.num_periods; ++t) {
    int64_t true_count = 0;
    for (int u = 0; u < kUsers; ++u) {
      const int8_t flag = t >= (u % 96) + 1 ? 1 : 0;
      true_count += flag;
      const auto report = clients[static_cast<size_t>(u)].ObserveState(flag);
      FR_CHECK_OK(report.status());
      if (report->has_value()) {
        FR_CHECK_OK(server.SubmitReport(u, t, **report));
      }
    }
    // 5. Online estimate, available immediately at every period.
    const double estimate = server.EstimateAt(t).ValueOrDie();
    if (t % 8 == 0) {
      std::printf("t=%3lld   true=%6lld   estimate=%9.1f   error=%7.1f\n",
                  static_cast<long long>(t),
                  static_cast<long long>(true_count), estimate,
                  estimate - static_cast<double>(true_count));
    }
    true_count_final = true_count;
  }
  (void)true_count_final;

  std::printf(
      "\nEach user sent at most d/2^h one-bit reports and spent exactly\n"
      "eps=%.1f of privacy budget for the whole 64-period window.\n",
      config.epsilon);
  return 0;
}
