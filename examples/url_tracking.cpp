// Scenario from the paper's introduction: a search-engine provider tracks
// how many users have a given URL in their frequently-visited list, day by
// day, without learning any individual's browsing. A news event makes the
// URL trend; the server watches the trend rise and fade through the
// LDP estimates, and we compare against the Erlingsson et al. baseline on
// the identical population.

#include <algorithm>
#include <cstdio>
#include <string>

#include "futurerand/common/macros.h"
#include "futurerand/common/threadpool.h"
#include "futurerand/sim/metrics.h"
#include "futurerand/sim/runner.h"
#include "futurerand/sim/trace.h"
#include "futurerand/sim/workload.h"

namespace {

// Crude console sparkline: one row per sampled day.
void PrintSeries(const char* label, const std::vector<double>& series,
                 double max_value) {
  std::printf("%s\n", label);
  for (size_t t = 0; t < series.size(); t += 8) {
    const int width = std::max(
        0, static_cast<int>(series[t] / max_value * 60.0));
    std::printf("  day %3zu | %-60s | %8.0f\n", t + 1,
                std::string(static_cast<size_t>(width), '#').c_str(),
                series[t]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace futurerand;

  // 256 days, 200k users; the URL enters/leaves "frequent" lists at most 6
  // times per user (lists churn slowly — the sparsity the paper exploits).
  sim::WorkloadConfig population;
  population.kind = sim::WorkloadKind::kTrend;  // shared news events
  population.num_users = 200000;
  population.num_periods = 256;
  population.max_changes = 6;
  population.param = 0.55;  // adoption probability per event
  const sim::Workload workload =
      sim::Workload::Generate(population, 2024).ValueOrDie();

  core::ProtocolConfig config;
  config.num_periods = population.num_periods;
  config.max_changes = population.max_changes;
  config.epsilon = 1.0;
  ThreadPool pool(ThreadPool::DefaultThreadCount());
  // k = 6 sits below the FutureRand/independent crossover; the adaptive
  // protocol picks the better certified construction automatically.
  const sim::RunResult ours =
      sim::RunProtocol(sim::ProtocolKind::kAdaptive, config, workload, 7,
                       &pool)
          .ValueOrDie();
  const sim::RunResult baseline =
      sim::RunProtocol(sim::ProtocolKind::kErlingsson, config, workload, 7,
                       &pool)
          .ValueOrDie();

  std::vector<double> truth;
  truth.reserve(workload.ground_truth().size());
  double peak = 1.0;
  for (int64_t value : workload.ground_truth()) {
    truth.push_back(static_cast<double>(value));
    peak = std::max(peak, static_cast<double>(value));
  }

  PrintSeries("True number of users with the URL in their frequent list:",
              truth, peak);
  PrintSeries("\nLDP estimate (adaptive hierarchical protocol, eps = 1):",
              ours.estimates, peak);

  std::printf("\nAccuracy over all 256 days (n=%lld users):\n",
              static_cast<long long>(population.num_users));
  std::printf("  ours       : %s\n", ours.metrics.ToString().c_str());
  std::printf("  Erlingsson : %s\n", baseline.metrics.ToString().c_str());
  std::printf(
      "  -> max-error improvement over the baseline: %.2fx at k=%lld\n",
      baseline.metrics.max_abs / ours.metrics.max_abs,
      static_cast<long long>(population.max_changes));
  FR_CHECK(ours.metrics.max_abs > 0.0);

  // Optional trace export: `url_tracking /tmp/urls.csv` records the run in
  // the t,truth,estimate,abs_error shape, which doubles as a replay
  // workload — `frsim --workload=replay --replay=/tmp/urls.csv` reproduces
  // this population's exact daily counts under any protocol.
  if (argc > 1) {
    FR_CHECK_OK(sim::WriteRunCsv(argv[1], ours, workload));
    std::printf("\ntrace written to %s (replay it with frsim "
                "--workload=replay --replay=%s)\n", argv[1], argv[1]);
  }
  return 0;
}
