// frload: load generator for frserve, built to be bit-identical to the
// in-process simulation.
//
//   frload --uds=/tmp/fr.sock --n=2000 --d=32 --k=2 --eps=1.0
//          --corrupt-rate=0.05 --drop-rate=0.02 --dedup
//          --checkpoint=/tmp/fr.ckpt --verify --json
//
// Replays exactly what sim::RunProtocol's hierarchical path does — same
// workload, same fleet seeded with the protocol seed, same channel seeded
// with ChannelSeedForRun(seed), same per-tick delivery order — except each
// encoded batch rides an FRS stream to frserve instead of a local
// IngestEncoded, with the server's ack/NACK verdicts driving the shared
// retransmit policy (net::DeliverEncodedOverStream). Ticks round-robin
// over --connections sockets; delivery is synchronous per batch, so the
// channel's random-draw order is identical to the in-process run.
//
// --verify closes the loop: after the kShutdown ack (which guarantees the
// server's final quiesced full checkpoint exists), it restores the
// checkpoint into a fresh aggregator, runs the identical protocol
// in-process, and requires bitwise-equal estimates plus equal delivery
// counters. Exit 3 on any mismatch.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "futurerand/common/flags.h"
#include "futurerand/common/json.h"
#include "futurerand/common/threadpool.h"
#include "futurerand/core/fleet.h"
#include "futurerand/core/wire.h"
#include "futurerand/net/client.h"
#include "futurerand/net/server.h"
#include "futurerand/sim/channel.h"
#include "futurerand/sim/runner.h"
#include "futurerand/sim/workload.h"
#include "futurerand/sim/workload_flags.h"

namespace {

using namespace futurerand;

// The hierarchical pipelines are the only ones with a batch transport to
// load-test; maps each to the randomizer RunProtocol would select, so the
// fleet here and the in-process verify run draw identical randomness.
Result<rand::RandomizerKind> RandomizerFor(sim::ProtocolKind kind) {
  switch (kind) {
    case sim::ProtocolKind::kFutureRand:
      return rand::RandomizerKind::kFutureRand;
    case sim::ProtocolKind::kIndependent:
      return rand::RandomizerKind::kIndependent;
    case sim::ProtocolKind::kBun:
      return rand::RandomizerKind::kBun;
    case sim::ProtocolKind::kAdaptive:
      return rand::RandomizerKind::kAdaptive;
    case sim::ProtocolKind::kLGrr:
      return rand::RandomizerKind::kLGrr;
    case sim::ProtocolKind::kLOlh:
      return rand::RandomizerKind::kLOlh;
    case sim::ProtocolKind::kLoloha:
      return rand::RandomizerKind::kLoloha;
    default:
      return Status::InvalidArgument(
          "frload drives the hierarchical pipelines only (future_rand | "
          "independent | bun | adaptive | lgrr | lolh | loloha)");
  }
}

#define FRLOAD_REQUIRE_OK(expr)                                  \
  do {                                                           \
    const ::futurerand::Status _st = (expr);                     \
    if (!_st.ok()) {                                             \
      std::fprintf(stderr, "%s\n", _st.ToString().c_str());      \
      return 1;                                                  \
    }                                                            \
  } while (false)

// One counter mismatch report line; returns whether the pair agreed.
bool CheckCounter(const char* name, int64_t remote, int64_t local,
                  bool* all_ok) {
  if (remote == local) {
    return true;
  }
  std::fprintf(stderr, "verify mismatch: %s remote=%lld in-process=%lld\n",
               name, static_cast<long long>(remote),
               static_cast<long long>(local));
  *all_ok = false;
  return false;
}

int Run(int argc, char** argv) {
  std::string uds;
  std::string host = "127.0.0.1";
  int64_t port = -1;
  int64_t connections = 2;
  std::string protocol_name = "future_rand";
  sim::WorkloadFlags workload_flags;
  int64_t n = 2000;
  int64_t d = 32;
  int64_t k = 2;
  double eps = 1.0;
  int64_t seed = 2;
  int64_t workload_seed = 1;
  int64_t threads = ThreadPool::DefaultThreadCount();
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;
  double burst_enter_rate = 0.0;
  double burst_exit_rate = 0.0;
  double burst_drop_rate = 0.0;
  double burst_corrupt_rate = 0.0;
  double outage_rate = 0.0;
  double outage_recovery_rate = 0.0;
  double delay_rate = 0.0;
  int64_t delay_max_ticks = 0;
  int64_t wire_version = 2;
  int64_t retransmit_budget = 32;
  bool dedup = false;
  int64_t dedup_window = 0;
  std::string checkpoint;
  bool do_shutdown = true;
  bool verify = false;
  bool json = false;
  bool help = false;

  FlagParser parser;
  parser.AddString("uds", &uds, "connect to this Unix domain socket");
  parser.AddString("host", &host, "TCP host (with --port)");
  parser.AddInt64("port", &port, "TCP port (-1 = use --uds)");
  parser.AddInt64("connections", &connections,
                  "sockets to multiplex ticks over (round-robin; delivery "
                  "stays synchronous per batch, so the fault sequence is "
                  "connection-count independent)");
  parser.AddString("protocol", &protocol_name,
                   "future_rand | independent | bun | adaptive");
  workload_flags.Register(&parser);
  parser.AddInt64("n", &n, "number of users");
  parser.AddInt64("d", &d, "time periods (power of two; must match frserve)");
  parser.AddInt64("k", &k, "per-user change budget (must match frserve)");
  parser.AddDouble("eps", &eps, "privacy budget (must match frserve)");
  parser.AddInt64("seed", &seed, "protocol seed (fleet + channel)");
  parser.AddInt64("workload-seed", &workload_seed, "workload seed");
  parser.AddInt64("threads", &threads,
                  "local worker threads (fleet advance + verify run)");
  parser.AddDouble("drop-rate", &drop_rate, "P(report lost in the channel)");
  parser.AddDouble("dup-rate", &dup_rate,
                   "P(report delivered twice); requires --dedup (and a "
                   "--dedup server)");
  parser.AddDouble("reorder-rate", &reorder_rate,
                   "P(delivered batch arrives shuffled)");
  parser.AddDouble("corrupt-rate", &corrupt_rate,
                   "P(one bit of the encoded batch flips in flight); the "
                   "server NACKs and frload retransmits");
  parser.AddDouble("burst-enter-rate", &burst_enter_rate,
                   "Gilbert-Elliott P(good->bad) per channel traversal");
  parser.AddDouble("burst-exit-rate", &burst_exit_rate,
                   "Gilbert-Elliott P(bad->good)");
  parser.AddDouble("burst-drop-rate", &burst_drop_rate,
                   "drop rate while the channel is in the bad state");
  parser.AddDouble("burst-corrupt-rate", &burst_corrupt_rate,
                   "corrupt rate while in the bad state");
  parser.AddDouble("outage-rate", &outage_rate,
                   "P(a client goes dark), evaluated per report");
  parser.AddDouble("outage-recovery-rate", &outage_recovery_rate,
                   "P(a dark client recovers), evaluated per report");
  parser.AddDouble("delay-rate", &delay_rate,
                   "P(a delivered report is delayed into a later tick)");
  parser.AddInt64("delay-max-ticks", &delay_max_ticks,
                  "uniform delay bound in ticks");
  parser.AddInt64("wire-version", &wire_version,
                  "2 = checksummed batches (NACK-driven retransmit), "
                  "1 = legacy (oracle-assisted retry)");
  parser.AddInt64("retransmit-budget", &retransmit_budget,
                  "max TOTAL transmissions per batch (N = initial + up to "
                  "N-1 resends), same contract as the simulator");
  parser.AddBool("dedup", &dedup,
                 "fault mix requires idempotent ingest; the server must be "
                 "started with --dedup too");
  parser.AddInt64("dedup-window", &dedup_window,
                  "bounded dedup memory (must match the server)");
  parser.AddString("checkpoint", &checkpoint,
                   "the server's checkpoint file; --verify restores it "
                   "after shutdown and compares estimates");
  parser.AddBool("shutdown", &do_shutdown,
                 "send a kShutdown control frame when done (the ack "
                 "guarantees the final checkpoint)");
  parser.AddBool("verify", &verify,
                 "after shutdown, restore the server checkpoint and "
                 "require bitwise-equal estimates + equal delivery "
                 "counters vs the identical in-process run (exit 3 on "
                 "mismatch)");
  parser.AddBool("json", &json,
                 "print one {\"bench\":\"frload\",...} line");
  parser.AddBool("help", &help, "print usage");

  const Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 parser.Usage("frload").c_str());
    return 2;
  }
  if (help) {
    std::fputs(parser.Usage("frload").c_str(), stdout);
    return 0;
  }
  if (uds.empty() && port < 0) {
    std::fprintf(stderr, "InvalidArgument: need --uds or --port\n%s",
                 parser.Usage("frload").c_str());
    return 2;
  }
  if (connections < 1 || threads < 1) {
    std::fprintf(stderr,
                 "InvalidArgument: --connections and --threads must be "
                 ">= 1\n");
    return 2;
  }
  if (verify && checkpoint.empty()) {
    std::fprintf(stderr,
                 "InvalidArgument: --verify needs --checkpoint (the "
                 "server's checkpoint file)\n");
    return 2;
  }
  if (verify && !do_shutdown) {
    std::fprintf(stderr,
                 "InvalidArgument: --verify needs --shutdown (only the "
                 "shutdown checkpoint is quiesced)\n");
    return 2;
  }

  const auto protocol = sim::ParseProtocolKind(protocol_name);
  if (!protocol.ok()) {
    std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
    return 2;
  }
  const auto randomizer = RandomizerFor(*protocol);
  if (!randomizer.ok()) {
    std::fprintf(stderr, "%s\n", randomizer.status().ToString().c_str());
    return 2;
  }

  core::ProtocolConfig config;
  config.num_periods = d;
  config.max_changes = k;
  config.epsilon = eps;
  config.randomizer = *randomizer;

  // The same FaultOptions the in-process verify run gets; validated here
  // so a bad fault mix fails before any socket traffic.
  sim::FaultOptions faults;
  faults.channel.drop_rate = drop_rate;
  faults.channel.duplicate_rate = dup_rate;
  faults.channel.reorder_rate = reorder_rate;
  faults.channel.corrupt_rate = corrupt_rate;
  faults.channel.burst_enter_rate = burst_enter_rate;
  faults.channel.burst_exit_rate = burst_exit_rate;
  faults.channel.burst_drop_rate = burst_drop_rate;
  faults.channel.burst_corrupt_rate = burst_corrupt_rate;
  faults.channel.outage_enter_rate = outage_rate;
  faults.channel.outage_exit_rate = outage_recovery_rate;
  faults.channel.delay_rate = delay_rate;
  faults.channel.delay_ticks_max = delay_max_ticks;
  if (wire_version == 1) {
    faults.wire_version = core::WireVersion::kV1;
  } else if (wire_version == 2) {
    faults.wire_version = core::WireVersion::kV2;
  } else {
    std::fprintf(stderr, "InvalidArgument: --wire-version must be 1 or 2\n");
    return 2;
  }
  faults.retransmit_budget = retransmit_budget;
  faults.dedup =
      dedup ? core::DedupPolicy::kIdempotent : core::DedupPolicy::kStrict;
  faults.dedup_window = core::DedupWindowPolicy{dedup_window};
  FRLOAD_REQUIRE_OK(faults.Validate());
  FRLOAD_REQUIRE_OK(config.Validate());

  const auto workload_config = workload_flags.ToConfig(n, d, k);
  if (!workload_config.ok()) {
    std::fprintf(stderr, "%s\n%s", workload_config.status().ToString().c_str(),
                 parser.Usage("frload").c_str());
    return 2;
  }
  const auto workload = sim::Workload::Generate(
      *workload_config, static_cast<uint64_t>(workload_seed));
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  ThreadPool pool(static_cast<int>(threads));
  const auto protocol_seed = static_cast<uint64_t>(seed);
  auto fleet = core::ClientFleet::Create(config, n, protocol_seed, &pool);
  if (!fleet.ok()) {
    std::fprintf(stderr, "%s\n", fleet.status().ToString().c_str());
    return 1;
  }

  // Connect the socket pool.
  std::vector<net::StreamClient> clients;
  for (int64_t c = 0; c < connections; ++c) {
    auto client = uds.empty()
                      ? net::StreamClient::ConnectTcp(
                            host, static_cast<int>(port))
                      : net::StreamClient::ConnectUnix(uds);
    if (!client.ok()) {
      std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
      return 1;
    }
    clients.push_back(std::move(*client));
  }

  const auto start = std::chrono::steady_clock::now();

  // Registrations ship pristine (the simulator's channel also only faults
  // report batches) and their outcome is not counted, matching the runner.
  {
    const std::string reg = core::EncodeRegistrationBatch(
        fleet->registrations(), faults.wire_version);
    const auto reply = clients[0].Call(reg);
    if (!reply.ok()) {
      std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
      return 1;
    }
    if (reply->verdict != net::Verdict::kAck) {
      std::fprintf(stderr,
                   "registration rejected by server (%s) — do the "
                   "protocol flags match frserve's?\n",
                   StatusCodeToString(reply->status));
      return 1;
    }
  }

  std::optional<sim::ChannelModel> channel;
  if (faults.channel.enabled()) {
    channel.emplace(faults.channel, sim::ChannelSeedForRun(protocol_seed));
  }
  sim::DeliveryMetrics delivery;

  // Churn workloads: joiners re-register at their join tick, exactly as
  // RunHierarchical replays them — pristine (no channel traversal, so the
  // fault sequence stays identical) and only under idempotent ingest,
  // where the server absorbs the duplicate registration.
  std::vector<std::vector<int64_t>> joiners_by_tick;
  const bool replay_joins = workload->has_presence() &&
                            faults.dedup == core::DedupPolicy::kIdempotent;
  if (replay_joins) {
    joiners_by_tick.resize(static_cast<size_t>(d) + 1);
    for (int64_t u = 0; u < n; ++u) {
      const int64_t join = workload->presence()[static_cast<size_t>(u)].join;
      if (join > 1) {
        joiners_by_tick[static_cast<size_t>(join)].push_back(u);
      }
    }
  }

  auto deliver = [&](const core::ReportBatch& batch,
                     int64_t tick) -> Status {
    FR_ASSIGN_OR_RETURN(const std::string pristine,
                        core::EncodeReportBatch(batch, faults.wire_version));
    net::StreamClient& client =
        clients[static_cast<size_t>(tick % connections)];
    return net::DeliverEncodedOverStream(
        client, pristine, channel.has_value() ? &*channel : nullptr,
        faults.wire_version, faults.retransmit_budget, &delivery);
  };

  // The tick loop below mirrors RunHierarchical line for line; any drift
  // breaks --verify, which is the point.
  std::vector<int8_t> states(static_cast<size_t>(n), 0);
  std::vector<size_t> next_change(static_cast<size_t>(n), 0);
  core::ReportBatch batch;
  core::ReportBatch delivered;
  int64_t reports = 0;
  for (int64_t t = 1; t <= d; ++t) {
    auto update_states = [&](int64_t begin, int64_t end) {
      for (int64_t u = begin; u < end; ++u) {
        const auto i = static_cast<size_t>(u);
        const std::vector<int64_t>& changes =
            workload->trace(u).change_times;
        if (next_change[i] < changes.size() &&
            changes[next_change[i]] == t) {
          states[i] = static_cast<int8_t>(1 - states[i]);
          ++next_change[i];
        }
      }
    };
    if (n > 1) {
      pool.ParallelFor(n, update_states);
    } else {
      update_states(0, n);
    }
    if (replay_joins && !joiners_by_tick[static_cast<size_t>(t)].empty()) {
      std::vector<core::RegistrationMessage> reregistrations;
      for (const int64_t u : joiners_by_tick[static_cast<size_t>(t)]) {
        reregistrations.push_back(
            fleet->registrations()[static_cast<size_t>(u)]);
      }
      const std::string encoded = core::EncodeRegistrationBatch(
          reregistrations, faults.wire_version);
      const auto reply = clients[0].Call(encoded);
      if (!reply.ok()) {
        std::fprintf(stderr, "%s\n", reply.status().ToString().c_str());
        return 1;
      }
      if (reply->verdict != net::Verdict::kAck) {
        std::fprintf(stderr,
                     "re-registration at t=%lld rejected by server (%s) — "
                     "is frserve running with --dedup?\n",
                     static_cast<long long>(t),
                     StatusCodeToString(reply->status));
        return 1;
      }
      delivery.registrations_replayed +=
          static_cast<int64_t>(reregistrations.size());
    }
    FRLOAD_REQUIRE_OK(fleet->AdvanceTick(states, &batch));
    reports += static_cast<int64_t>(batch.size());
    if (channel.has_value()) {
      channel->Transmit(batch, &delivered);
      FRLOAD_REQUIRE_OK(deliver(delivered, t - 1));
    } else {
      FRLOAD_REQUIRE_OK(deliver(batch, t - 1));
    }
  }
  if (channel.has_value() && faults.channel.delay_rate > 0.0) {
    channel->FlushDelayed(&delivered);
    if (!delivered.empty()) {
      FRLOAD_REQUIRE_OK(deliver(delivered, d));
    }
  }

  if (channel.has_value()) {
    const sim::DeliveryMetrics& channel_stats = channel->stats();
    delivery.records_sent = channel_stats.records_sent;
    delivery.records_dropped = channel_stats.records_dropped;
    delivery.records_outage_dropped = channel_stats.records_outage_dropped;
    delivery.records_duplicated = channel_stats.records_duplicated;
    delivery.records_delayed = channel_stats.records_delayed;
    delivery.records_delivered = channel_stats.records_delivered;
    delivery.batches_sent = channel_stats.batches_sent;
    delivery.batches_reordered = channel_stats.batches_reordered;
    delivery.batches_corrupted = channel_stats.batches_corrupted;
    delivery.batches_in_burst = channel_stats.batches_in_burst;
    delivery.client_outages = channel_stats.client_outages;
  } else {
    delivery.records_sent = reports;
    delivery.records_delivered = reports;
    delivery.batches_sent = d;
  }

  if (do_shutdown) {
    // The ack arrives after the drain and the final quiesced full
    // checkpoint — from here the checkpoint file is complete.
    FRLOAD_REQUIRE_OK(clients[0].SendControl(net::ControlOp::kShutdown));
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  int verify_result = -1;  // -1 = not run, 1 = pass, 0 = fail
  if (verify) {
    bool all_ok = true;
    const auto local = sim::RunProtocol(*protocol, config, *workload,
                                        protocol_seed, &pool,
                                        /*num_shards=*/0, faults);
    if (!local.ok()) {
      std::fprintf(stderr, "%s\n", local.status().ToString().c_str());
      return 1;
    }
    auto restored = core::ShardedAggregator::ForProtocol(
        config, /*num_shards=*/1, faults.dedup, faults.dedup_window);
    if (!restored.ok()) {
      std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
      return 1;
    }
    FRLOAD_REQUIRE_OK(net::RestoreFromCheckpointFile(checkpoint, &*restored));
    const auto remote_estimates = config.consistent_estimation
                                      ? restored->EstimateAllConsistent()
                                      : restored->EstimateAll();
    if (!remote_estimates.ok()) {
      std::fprintf(stderr, "%s\n",
                   remote_estimates.status().ToString().c_str());
      return 1;
    }
    if (remote_estimates->size() != local->estimates.size()) {
      std::fprintf(stderr, "verify mismatch: estimate lengths differ\n");
      all_ok = false;
    } else {
      for (size_t t = 0; t < local->estimates.size(); ++t) {
        if ((*remote_estimates)[t] != local->estimates[t]) {
          std::fprintf(stderr,
                       "verify mismatch: estimate[%zu] remote=%.17g "
                       "in-process=%.17g\n",
                       t, (*remote_estimates)[t], local->estimates[t]);
          all_ok = false;
          break;
        }
      }
    }
    const sim::DeliveryMetrics& lhs = delivery;
    const sim::DeliveryMetrics& rhs = local->delivery;
    CheckCounter("records_sent", lhs.records_sent, rhs.records_sent,
                 &all_ok);
    CheckCounter("records_dropped", lhs.records_dropped,
                 rhs.records_dropped, &all_ok);
    CheckCounter("records_duplicated", lhs.records_duplicated,
                 rhs.records_duplicated, &all_ok);
    CheckCounter("records_delayed", lhs.records_delayed,
                 rhs.records_delayed, &all_ok);
    CheckCounter("records_delivered", lhs.records_delivered,
                 rhs.records_delivered, &all_ok);
    CheckCounter("records_applied", lhs.records_applied,
                 rhs.records_applied, &all_ok);
    CheckCounter("records_deduped", lhs.records_deduped,
                 rhs.records_deduped, &all_ok);
    CheckCounter("records_out_of_window", lhs.records_out_of_window,
                 rhs.records_out_of_window, &all_ok);
    CheckCounter("batches_sent", lhs.batches_sent, rhs.batches_sent,
                 &all_ok);
    CheckCounter("batches_corrupted", lhs.batches_corrupted,
                 rhs.batches_corrupted, &all_ok);
    CheckCounter("batches_checksum_rejected", lhs.batches_checksum_rejected,
                 rhs.batches_checksum_rejected, &all_ok);
    CheckCounter("batches_retransmitted", lhs.batches_retransmitted,
                 rhs.batches_retransmitted, &all_ok);
    CheckCounter("registrations_replayed", lhs.registrations_replayed,
                 rhs.registrations_replayed, &all_ok);
    verify_result = all_ok ? 1 : 0;
  }

  if (json) {
    JsonLine line;
    line.Add("bench", "frload")
        .Add("protocol", protocol_name)
        .Add("workload", workload_flags.workload)
        .Add("n", n)
        .Add("d", d)
        .Add("k", k)
        .Add("eps", eps)
        .Add("connections", connections)
        .Add("wire_version", wire_version)
        .Add("records_sent", delivery.records_sent)
        .Add("records_delivered", delivery.records_delivered)
        .Add("records_applied", delivery.records_applied)
        .Add("records_deduped", delivery.records_deduped)
        .Add("batches_sent", delivery.batches_sent)
        .Add("batches_corrupted", delivery.batches_corrupted)
        .Add("batches_checksum_rejected", delivery.batches_checksum_rejected)
        .Add("batches_retransmitted", delivery.batches_retransmitted)
        .Add("wall_seconds", wall)
        .Add("records_per_sec",
             wall > 0.0 ? static_cast<double>(reports) / wall : 0.0)
        .Add("verify", static_cast<int64_t>(verify_result));
    std::printf("%s\n", line.Str().c_str());
  } else {
    std::printf("frload: %s\n", delivery.ToString().c_str());
    if (verify_result >= 0) {
      std::printf("verify: %s\n", verify_result == 1 ? "PASS" : "FAIL");
    }
  }
  return verify_result == 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
