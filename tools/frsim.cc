// frsim: command-line simulator for the longitudinal LDP protocols.
//
//   frsim --protocol=future_rand --workload=trend --n=50000 --d=256
//         --k=8 --eps=1.0 --reps=3 --seed=1 --csv=/tmp/run.csv
//
// Runs the chosen protocol over a synthetic population and prints the error
// metrics (optionally dumping the per-period trace of the last repetition
// to CSV for plotting).

#include <cstdio>
#include <iostream>
#include <string>

#include "futurerand/common/flags.h"
#include "futurerand/common/table_printer.h"
#include "futurerand/common/threadpool.h"
#include "futurerand/core/config.h"
#include "futurerand/core/store.h"
#include "futurerand/sim/runner.h"
#include "futurerand/sim/trace.h"
#include "futurerand/sim/workload.h"
#include "futurerand/sim/workload_flags.h"

namespace {

using namespace futurerand;

int Run(int argc, char** argv) {
  std::string protocol_name = "future_rand";
  sim::WorkloadFlags workload_flags;
  int64_t n = 20000;
  int64_t d = 256;
  int64_t k = 8;
  double eps = 1.0;
  double alpha = 0.5;
  int64_t reps = 3;
  int64_t seed = 1;
  int64_t threads = ThreadPool::DefaultThreadCount();
  int64_t shards = 0;
  bool adapt_support = false;
  const core::StoreConfig sketch_defaults;  // defaults carry the sketch knobs
  std::string store_name = "dense";
  int64_t sketch_rows = sketch_defaults.sketch_rows;
  int64_t sketch_width = sketch_defaults.sketch_width;
  int64_t sketch_seed = static_cast<int64_t>(sketch_defaults.sketch_seed);
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  double corrupt_rate = 0.0;
  double burst_enter_rate = 0.0;
  double burst_exit_rate = 0.0;
  double burst_drop_rate = 0.0;
  double burst_corrupt_rate = 0.0;
  double outage_rate = 0.0;
  double outage_recovery_rate = 0.0;
  double delay_rate = 0.0;
  int64_t delay_max_ticks = 0;
  int64_t wire_version = 2;
  int64_t retransmit_budget = 32;
  bool dedup = false;
  int64_t dedup_window = 0;
  int64_t checkpoint_every = 0;
  std::string checkpoint_mode = "full";
  int64_t checkpoint_compact_every = 8;
  std::string csv_path;
  bool help = false;

  FlagParser parser;
  parser.AddString("protocol", &protocol_name,
                   "future_rand | independent | bun | adaptive | erlingsson "
                   "| naive_rr | central_tree | lgrr | lolh | loloha | "
                   "non_private");
  workload_flags.Register(&parser);
  parser.AddInt64("n", &n, "number of users");
  parser.AddInt64("d", &d, "time periods (power of two)");
  parser.AddInt64("k", &k, "per-user change budget");
  parser.AddDouble("eps", &eps, "privacy budget (0 < eps <= 1)");
  parser.AddDouble("alpha", &alpha,
                   "longitudinal eps_1/eps_perm split in (0, 1); only the "
                   "lgrr | lolh | loloha protocols read it");
  parser.AddInt64("reps", &reps, "independent repetitions");
  parser.AddInt64("seed", &seed, "base seed (deterministic)");
  parser.AddInt64("threads", &threads, "worker threads");
  parser.AddInt64("shards", &shards,
                  "aggregator server shards (0 = one per worker thread); "
                  "estimates are identical for any value");
  parser.AddBool("adapt_support", &adapt_support,
                 "enable per-level support adaptation (extension)");
  parser.AddString("store", &store_name,
                   "per-shard aggregate storage: dense (exact, O(d) per "
                   "shard) | sketch (count-sketch levels, O(levels*R*W) "
                   "per shard, bounded extra error)");
  parser.AddInt64("sketch-rows", &sketch_rows,
                  "count-sketch depth R (rows per sketched level), in "
                  "[1, 64]; only with --store=sketch");
  parser.AddInt64("sketch-width", &sketch_width,
                  "count-sketch width W (buckets per row), a power of two "
                  "in [8, 2^30]; only with --store=sketch");
  parser.AddInt64("sketch-seed", &sketch_seed,
                  "seed of the per-(level,row) hashes; part of the store "
                  "identity (merges require equal seeds)");
  parser.AddDouble("drop-rate", &drop_rate,
                   "P(report lost in the channel), hierarchical only");
  parser.AddDouble("dup-rate", &dup_rate,
                   "P(report delivered twice); requires --dedup");
  parser.AddDouble("reorder-rate", &reorder_rate,
                   "P(delivered batch arrives shuffled)");
  parser.AddDouble("corrupt-rate", &corrupt_rate,
                   "P(one bit of the encoded batch flips); requires --dedup "
                   "under --wire-version=1");
  parser.AddDouble("burst-enter-rate", &burst_enter_rate,
                   "Gilbert-Elliott P(good->bad) per channel traversal; "
                   "enables the burst layer");
  parser.AddDouble("burst-exit-rate", &burst_exit_rate,
                   "Gilbert-Elliott P(bad->good); expected burst length is "
                   "1/rate traversals");
  parser.AddDouble("burst-drop-rate", &burst_drop_rate,
                   "drop rate while the channel is in the bad state "
                   "(replaces --drop-rate there)");
  parser.AddDouble("burst-corrupt-rate", &burst_corrupt_rate,
                   "corrupt rate while in the bad state (replaces "
                   "--corrupt-rate there)");
  parser.AddDouble("outage-rate", &outage_rate,
                   "P(a client goes dark, losing its reports), evaluated "
                   "per report — per-client fault correlation");
  parser.AddDouble("outage-recovery-rate", &outage_recovery_rate,
                   "P(a dark client recovers), evaluated per report");
  parser.AddDouble("delay-rate", &delay_rate,
                   "P(a delivered report is delayed into a later tick's "
                   "batch); requires --dedup");
  parser.AddInt64("delay-max-ticks", &delay_max_ticks,
                  "uniform delay bound in ticks (>= 1 when --delay-rate "
                  "is set)");
  parser.AddInt64("wire-version", &wire_version,
                  "report batch framing: 2 = checksummed (corruption is "
                  "detected by the receiver and NACK-retransmitted), "
                  "1 = legacy unchecksummed (oracle-assisted retry, "
                  "undetected flips land in the estimate)");
  parser.AddInt64("retransmit-budget", &retransmit_budget,
                  "max delivery attempts per batch before the run fails "
                  "(size against the expected burst length)");
  parser.AddBool("dedup", &dedup,
                 "idempotent ingest: duplicates/retries are absorbed, "
                 "making at-least-once delivery exact");
  parser.AddInt64("dedup-window", &dedup_window,
                  "evict per-client dedup bits older than this many "
                  "boundaries behind each client's newest report "
                  "(0 = keep everything); requires --dedup");
  parser.AddInt64("checkpoint-every", &checkpoint_every,
                  "checkpoint + restore the aggregator every this many "
                  "periods (0 = never)");
  parser.AddString("checkpoint-mode", &checkpoint_mode,
                   "full | delta (delta serializes only dirtied shards, "
                   "with periodic full compaction blobs)");
  parser.AddInt64("checkpoint-compact-every", &checkpoint_compact_every,
                  "under --checkpoint-mode=delta, take a full compaction "
                  "blob every this many checkpoints");
  parser.AddString("csv", &csv_path,
                   "optional path for the last repetition's t,truth,"
                   "estimate,abs_error trace");
  parser.AddBool("help", &help, "print usage");

  const Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 parser.Usage("frsim").c_str());
    return 2;
  }
  if (help) {
    std::fputs(parser.Usage("frsim").c_str(), stdout);
    return 0;
  }

  if (threads < 1) {
    std::fprintf(stderr, "InvalidArgument: --threads must be >= 1\n%s",
                 parser.Usage("frsim").c_str());
    return 2;
  }
  const auto protocol = sim::ParseProtocolKind(protocol_name);
  if (!protocol.ok()) {
    std::fprintf(stderr, "%s\n", protocol.status().ToString().c_str());
    return 2;
  }
  const auto workload_config = workload_flags.ToConfig(n, d, k);
  if (!workload_config.ok()) {
    std::fprintf(stderr, "%s\n%s", workload_config.status().ToString().c_str(),
                 parser.Usage("frsim").c_str());
    return 2;
  }

  core::ProtocolConfig config;
  config.num_periods = d;
  config.max_changes = k;
  config.epsilon = eps;
  config.longitudinal_alpha = alpha;
  config.adapt_support_per_level = adapt_support;
  const auto store_kind = core::ParseStoreKind(store_name);
  if (!store_kind.ok()) {
    std::fprintf(stderr, "%s\n%s", store_kind.status().ToString().c_str(),
                 parser.Usage("frsim").c_str());
    return 2;
  }
  if (*store_kind == core::StoreKind::kSketch) {
    config.store = core::StoreConfig::Sketch(
        static_cast<int32_t>(sketch_rows), sketch_width,
        static_cast<uint64_t>(sketch_seed));
  }
  if (const Status store_status = config.store.Validate();
      !store_status.ok()) {
    std::fprintf(stderr, "%s\n%s", store_status.ToString().c_str(),
                 parser.Usage("frsim").c_str());
    return 2;
  }

  sim::FaultOptions faults;
  faults.channel.drop_rate = drop_rate;
  faults.channel.duplicate_rate = dup_rate;
  faults.channel.reorder_rate = reorder_rate;
  faults.channel.corrupt_rate = corrupt_rate;
  faults.channel.burst_enter_rate = burst_enter_rate;
  faults.channel.burst_exit_rate = burst_exit_rate;
  faults.channel.burst_drop_rate = burst_drop_rate;
  faults.channel.burst_corrupt_rate = burst_corrupt_rate;
  faults.channel.outage_enter_rate = outage_rate;
  faults.channel.outage_exit_rate = outage_recovery_rate;
  faults.channel.delay_rate = delay_rate;
  faults.channel.delay_ticks_max = delay_max_ticks;
  if (wire_version == 1) {
    faults.wire_version = core::WireVersion::kV1;
  } else if (wire_version == 2) {
    faults.wire_version = core::WireVersion::kV2;
  } else {
    std::fprintf(stderr, "InvalidArgument: --wire-version must be 1 or 2\n%s",
                 parser.Usage("frsim").c_str());
    return 2;
  }
  faults.retransmit_budget = retransmit_budget;
  faults.dedup = dedup ? core::DedupPolicy::kIdempotent
                       : core::DedupPolicy::kStrict;
  faults.dedup_window = core::DedupWindowPolicy{dedup_window};
  faults.checkpoint_every = checkpoint_every;
  if (checkpoint_mode == "full") {
    faults.checkpoint_mode = core::CheckpointMode::kFull;
  } else if (checkpoint_mode == "delta") {
    faults.checkpoint_mode = core::CheckpointMode::kDelta;
  } else {
    std::fprintf(stderr,
                 "InvalidArgument: --checkpoint-mode must be full or "
                 "delta\n%s",
                 parser.Usage("frsim").c_str());
    return 2;
  }
  faults.checkpoint_compact_every = checkpoint_compact_every;
  if (const Status fault_status = faults.Validate(); !fault_status.ok()) {
    std::fprintf(stderr, "%s\n%s", fault_status.ToString().c_str(),
                 parser.Usage("frsim").c_str());
    return 2;
  }

  ThreadPool pool(static_cast<int>(threads));
  TablePrinter table({"rep", "max_error", "mean_error", "rmse", "argmax_t",
                      "reports", "seconds"});
  for (int64_t r = 0; r < reps; ++r) {
    const uint64_t workload_seed = static_cast<uint64_t>(seed + 2 * r + 1);
    const uint64_t protocol_seed = static_cast<uint64_t>(seed + 2 * r + 2);
    const auto workload =
        sim::Workload::Generate(*workload_config, workload_seed);
    if (!workload.ok()) {
      std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
      return 1;
    }
    const auto result =
        sim::RunProtocol(*protocol, config, *workload, protocol_seed, &pool,
                         static_cast<int>(shards), faults);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    if (faults.active()) {
      std::printf("rep %lld %s\n", static_cast<long long>(r),
                  result->delivery.ToString().c_str());
    }
    table.AddRow(
        {std::to_string(r), TablePrinter::FormatDouble(result->metrics.max_abs),
         TablePrinter::FormatDouble(result->metrics.mean_abs),
         TablePrinter::FormatDouble(result->metrics.rmse),
         std::to_string(result->metrics.argmax_time),
         TablePrinter::FormatCount(result->reports_submitted),
         TablePrinter::FormatDouble(result->wall_seconds, 3)});
    if (!csv_path.empty() && r == reps - 1) {
      const Status written = sim::WriteRunCsv(csv_path, *result, *workload);
      if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.ToString().c_str());
        return 1;
      }
      std::printf("trace written to %s\n", csv_path.c_str());
    }
  }
  std::printf("%s over %s: %s\n", protocol_name.c_str(),
              workload_flags.workload.c_str(), config.ToString().c_str());
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
