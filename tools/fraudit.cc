// fraudit: command-line privacy auditor.
//
//   fraudit --k=64 --eps=1.0 [--kind=future_rand] [--online_length=6]
//
// Prints the randomizer's resolved parameters (annulus, P*_out, exact
// c_gap) and the exact certified epsilon; optionally runs the exhaustive
// online-client audit. Exit code 0 iff every audit passes — usable as a
// deployment pre-flight check.

#include <cstdio>

#include "futurerand/analysis/privacy_audit.h"
#include "futurerand/common/flags.h"
#include "futurerand/randomizer/annulus.h"
#include "futurerand/randomizer/randomizer.h"

namespace {

using namespace futurerand;

int Run(int argc, char** argv) {
  int64_t k = 8;
  double eps = 1.0;
  std::string kind_name = "future_rand";
  int64_t online_length = 0;
  bool help = false;

  FlagParser parser;
  parser.AddInt64("k", &k, "sparsity budget (non-zero report positions)");
  parser.AddDouble("eps", &eps, "privacy budget (0 < eps <= 1)");
  parser.AddString("kind", &kind_name,
                   "future_rand | independent | bun | adaptive");
  parser.AddInt64("online_length", &online_length,
                  "if > 0, also run the exhaustive online-client audit for "
                  "this sequence length (cost ~ 6^L; keep <= 10)");
  parser.AddBool("help", &help, "print usage");

  const Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 parser.Usage("fraudit").c_str());
    return 2;
  }
  if (help) {
    std::fputs(parser.Usage("fraudit").c_str(), stdout);
    return 0;
  }

  const auto kind = rand::ParseRandomizerKind(kind_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }

  // Parameter dump for the composed constructions.
  if (*kind == rand::RandomizerKind::kFutureRand ||
      *kind == rand::RandomizerKind::kBun) {
    const auto spec = *kind == rand::RandomizerKind::kFutureRand
                          ? rand::MakeFutureRandSpec(k, eps)
                          : rand::MakeBunSpec(k, eps);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    std::printf("%s\n", spec->ToString().c_str());
  }

  const auto audit = analysis::AuditRandomizer(*kind, k, eps);
  if (!audit.ok()) {
    std::fprintf(stderr, "%s\n", audit.status().ToString().c_str());
    return 2;
  }
  std::printf("randomizer audit: %s\n", audit->ToString().c_str());
  bool all_passed = audit->satisfied;

  if (online_length > 0) {
    if (*kind != rand::RandomizerKind::kFutureRand) {
      std::fprintf(stderr,
                   "online audit is implemented for --kind=future_rand\n");
      return 2;
    }
    const auto spec = rand::MakeFutureRandSpec(k, eps);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    const auto online = analysis::AuditOnlineClient(*spec, online_length);
    if (!online.ok()) {
      std::fprintf(stderr, "%s\n", online.status().ToString().c_str());
      return 2;
    }
    std::printf("online client audit (L=%lld): %s\n",
                static_cast<long long>(online_length),
                online->ToString().c_str());
    all_passed = all_passed && online->satisfied;
  }

  std::printf(all_passed ? "ALL AUDITS PASSED\n" : "AUDIT FAILED\n");
  return all_passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
