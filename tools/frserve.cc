// frserve: the async FRW ingestion service as a standalone daemon.
//
//   frserve --uds=/tmp/fr.sock --d=64 --k=4 --eps=1.0
//           --checkpoint=/tmp/fr.ckpt --checkpoint-interval-ms=200
//
// Listens on a Unix domain socket and/or TCP, ingests FRS-framed FRW
// batches into a ShardedAggregator (see net/server.h for the protocol and
// threading model), and exits on SIGINT/SIGTERM or a kShutdown control
// frame — after draining, taking the final full checkpoint, and acking.
// With --json the exit path prints one {"bench":"frserve",...} stats line.

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "futurerand/common/flags.h"
#include "futurerand/common/json.h"
#include "futurerand/net/server.h"
#include "futurerand/randomizer/randomizer.h"

namespace {

using namespace futurerand;

net::IngestServer* g_server = nullptr;

void HandleSignal(int /*signum*/) {
  if (g_server != nullptr) {
    // Atomic store + self-pipe write: async-signal-safe.
    g_server->RequestStop();
  }
}

int Run(int argc, char** argv) {
  std::string uds;
  std::string host = "127.0.0.1";
  int64_t port = -1;
  int64_t d = 64;
  int64_t k = 4;
  double eps = 1.0;
  double alpha = 0.5;
  std::string randomizer = "future_rand";
  int64_t shards = 0;
  int64_t workers = 2;
  bool dedup = false;
  int64_t dedup_window = 0;
  int64_t queue_capacity = 128;
  std::string checkpoint;
  int64_t checkpoint_interval_ms = 0;
  std::string checkpoint_mode = "full";
  int64_t checkpoint_compact_every = 8;
  std::string restore;
  bool force_poll = false;
  bool json = false;
  bool help = false;

  FlagParser parser;
  parser.AddString("uds", &uds, "Unix domain socket path to listen on");
  parser.AddString("host", &host, "TCP bind address (with --port)");
  parser.AddInt64("port", &port,
                  "TCP port to listen on (0 = ephemeral, printed on "
                  "startup; -1 = no TCP listener)");
  parser.AddInt64("d", &d, "time periods (power of two)");
  parser.AddInt64("k", &k, "per-user change budget");
  parser.AddDouble("eps", &eps, "privacy budget (0 < eps <= 1)");
  parser.AddDouble("alpha", &alpha,
                   "longitudinal eps_1/eps_perm split in (0, 1); only the "
                   "lgrr | lolh | loloha randomizers read it");
  parser.AddString("randomizer", &randomizer,
                   "future_rand | independent | bun | adaptive | lgrr | "
                   "lolh | loloha — must match the fleet that registers");
  parser.AddInt64("shards", &shards,
                  "aggregator shards (0 = one per worker)");
  parser.AddInt64("workers", &workers, "ingest worker threads");
  parser.AddBool("dedup", &dedup,
                 "idempotent ingest (absorb duplicates/retries)");
  parser.AddInt64("dedup-window", &dedup_window,
                  "bounded per-client dedup memory (0 = unbounded); "
                  "requires --dedup");
  parser.AddInt64("queue-capacity", &queue_capacity,
                  "batches a worker queue holds before answering kOverload");
  parser.AddString("checkpoint", &checkpoint,
                   "durable checkpoint file (empty = no checkpointing)");
  parser.AddInt64("checkpoint-interval-ms", &checkpoint_interval_ms,
                  "live checkpoint cadence (0 = only on control frames "
                  "and at shutdown)");
  parser.AddString("checkpoint-mode", &checkpoint_mode,
                   "full | delta (delta appends dirtied shards, with "
                   "periodic full compactions that rewrite the file)");
  parser.AddInt64("checkpoint-compact-every", &checkpoint_compact_every,
                  "under --checkpoint-mode=delta, rewrite with a full "
                  "blob every this many checkpoints");
  parser.AddString("restore", &restore,
                   "checkpoint file to restore before serving (warm "
                   "restart)");
  parser.AddBool("force-poll", &force_poll,
                 "use the poll(2) backend even where epoll exists");
  parser.AddBool("json", &json,
                 "print one {\"bench\":\"frserve\",...} stats line on exit");
  parser.AddBool("help", &help, "print usage");

  const Status parse_status = parser.Parse(argc, argv);
  if (!parse_status.ok()) {
    std::fprintf(stderr, "%s\n%s", parse_status.ToString().c_str(),
                 parser.Usage("frserve").c_str());
    return 2;
  }
  if (help) {
    std::fputs(parser.Usage("frserve").c_str(), stdout);
    return 0;
  }
  if (uds.empty() && port < 0) {
    std::fprintf(stderr, "InvalidArgument: need --uds and/or --port\n%s",
                 parser.Usage("frserve").c_str());
    return 2;
  }

  net::ServiceConfig config;
  config.protocol.num_periods = d;
  config.protocol.max_changes = k;
  config.protocol.epsilon = eps;
  config.protocol.longitudinal_alpha = alpha;
  if (const auto kind = rand::ParseRandomizerKind(randomizer); kind.ok()) {
    config.protocol.randomizer = *kind;
  } else {
    std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
    return 2;
  }
  config.num_shards = static_cast<int>(shards);
  config.num_workers = static_cast<int>(workers);
  config.dedup =
      dedup ? core::DedupPolicy::kIdempotent : core::DedupPolicy::kStrict;
  config.dedup_window = core::DedupWindowPolicy{dedup_window};
  config.worker_queue_capacity = static_cast<size_t>(queue_capacity);
  config.checkpoint_path = checkpoint;
  config.checkpoint_interval_ms = checkpoint_interval_ms;
  if (checkpoint_mode == "full") {
    config.checkpoint_mode = core::CheckpointMode::kFull;
  } else if (checkpoint_mode == "delta") {
    config.checkpoint_mode = core::CheckpointMode::kDelta;
  } else {
    std::fprintf(stderr,
                 "InvalidArgument: --checkpoint-mode must be full or delta\n");
    return 2;
  }
  config.checkpoint_compact_every = checkpoint_compact_every;
  config.force_poll = force_poll;

  auto server = net::IngestServer::Create(config);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  if (!restore.empty()) {
    const Status restored =
        net::RestoreFromCheckpointFile(restore, &(*server)->aggregator());
    if (!restored.ok()) {
      std::fprintf(stderr, "%s\n", restored.ToString().c_str());
      return 1;
    }
    std::printf("frserve restored from %s\n", restore.c_str());
  }
  if (!uds.empty()) {
    const Status listening = (*server)->AddUnixListener(uds);
    if (!listening.ok()) {
      std::fprintf(stderr, "%s\n", listening.ToString().c_str());
      return 1;
    }
    std::printf("frserve listening uds=%s\n", uds.c_str());
  }
  int bound_port = -1;
  if (port >= 0) {
    const auto tcp = (*server)->AddTcpListener(host, static_cast<int>(port));
    if (!tcp.ok()) {
      std::fprintf(stderr, "%s\n", tcp.status().ToString().c_str());
      return 1;
    }
    bound_port = *tcp;
    std::printf("frserve listening tcp=%s:%d\n", host.c_str(), bound_port);
  }

  g_server = server->get();
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const Status started = (*server)->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  // The ready line is the startup barrier scripts wait on.
  std::printf("frserve ready (backend=%s workers=%d)\n",
              (*server)->using_epoll() ? "epoll" : "poll",
              config.num_workers);
  std::fflush(stdout);

  const Status served = (*server)->Join();
  g_server = nullptr;

  const net::ServerStats stats = (*server)->stats();
  if (json) {
    JsonLine line;
    line.Add("bench", "frserve")
        .Add("backend", (*server)->using_epoll() ? "epoll" : "poll")
        .Add("workers", config.num_workers)
        .Add("port", bound_port)
        .Add("connections_accepted", stats.connections_accepted)
        .Add("frames_received", stats.frames_received)
        .Add("batches_acked", stats.batches_acked)
        .Add("batches_nacked", stats.batches_nacked)
        .Add("batches_overloaded", stats.batches_overloaded)
        .Add("batches_errored", stats.batches_errored)
        .Add("records_applied", stats.records_applied)
        .Add("records_deduped", stats.records_deduped)
        .Add("records_out_of_window", stats.records_out_of_window)
        .Add("checkpoints_taken", stats.checkpoints_taken)
        .Add("delta_checkpoints_taken", stats.delta_checkpoints_taken)
        .Add("checkpoint_bytes", stats.checkpoint_bytes);
    std::printf("%s\n", line.Str().c_str());
  } else {
    std::printf(
        "frserve exit: %lld conns, %lld frames, %lld acked, %lld nacked, "
        "%lld overloaded, %lld errored, %lld applied\n",
        static_cast<long long>(stats.connections_accepted),
        static_cast<long long>(stats.frames_received),
        static_cast<long long>(stats.batches_acked),
        static_cast<long long>(stats.batches_nacked),
        static_cast<long long>(stats.batches_overloaded),
        static_cast<long long>(stats.batches_errored),
        static_cast<long long>(stats.records_applied));
  }
  if (!served.ok()) {
    std::fprintf(stderr, "%s\n", served.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
