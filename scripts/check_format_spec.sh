#!/usr/bin/env bash
# Cross-checks the FRW kind and version constants in the code against the
# normative table in docs/FORMATS.md, so the spec and the implementation
# cannot drift apart silently:
#
#   1. every `kKind* = N;  // FRW vV` constant in
#      src/futurerand/core/wire.h must appear in the FORMATS.md kind table
#      with the same kind number N and container version V, and vice
#      versa;
#   2. every container version a kind claims must itself be declared as a
#      `kWireVersionV = V` constant in wire.h;
#   3. the kind numbers quoted in the core/snapshot.h header comment
#      ("kServerState (3)" etc.) must agree with wire.h;
#   4. every `kFrs* = N;  // FRS` constant in src/futurerand/net/frame.h
#      must appear in the FORMATS.md §12 stream-framing table with the
#      same value, and vice versa.
#
# Run from anywhere; exits non-zero with a diff on any mismatch.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
wire_h="$repo_root/src/futurerand/core/wire.h"
snapshot_h="$repo_root/src/futurerand/core/snapshot.h"
frame_h="$repo_root/src/futurerand/net/frame.h"
spec="$repo_root/docs/FORMATS.md"
fail=0

for f in "$wire_h" "$snapshot_h" "$frame_h" "$spec"; do
  if [ ! -f "$f" ]; then
    echo "check_format_spec: missing $f" >&2
    exit 1
  fi
done

# "kKindReport 2 1" (name, kind byte, container version) from the header
# constants; the trailing "// FRW vN" comment is mandatory on every kind.
code_kinds=$(sed -n \
  's|^inline constexpr char \(kKind[A-Za-z0-9]*\) = \([0-9]*\); *// FRW v\([0-9]*\).*|\1 \2 \3|p' \
  "$wire_h" | sort)

# The same triples from the spec's table (| 2 | `kKindReport` | 1 | ...).
spec_kinds=$(sed -n \
  's/^| *\([0-9][0-9]*\) *| *`\(kKind[A-Za-z0-9]*\)` *| *\([0-9][0-9]*\) *|.*/\2 \1 \3/p' \
  "$spec" | sort)

if [ -z "$code_kinds" ]; then
  echo "check_format_spec: found no annotated kKind constants in $wire_h" >&2
  echo "(every kind needs a trailing '// FRW vN' comment)" >&2
  exit 1
fi
if [ -z "$spec_kinds" ]; then
  echo "check_format_spec: found no kind table rows in $spec" >&2
  exit 1
fi

if [ "$code_kinds" != "$spec_kinds" ]; then
  echo "check_format_spec: wire.h constants and docs/FORMATS.md table disagree" >&2
  echo "--- wire.h (name kind version)" >&2
  echo "$code_kinds" >&2
  echo "--- docs/FORMATS.md (name kind version)" >&2
  echo "$spec_kinds" >&2
  fail=1
fi

# Every container version used by a kind must be declared as a
# kWireVersion<V> = V constant (names and values in lockstep).
declared_versions=$(sed -n \
  's/^inline constexpr char kWireVersion\([0-9]*\) = \([0-9]*\);.*/\1 \2/p' \
  "$wire_h")
while read -r suffix value; do
  [ -z "$suffix" ] && continue
  if [ "$suffix" != "$value" ]; then
    echo "check_format_spec: kWireVersion$suffix = $value (suffix and value must agree)" >&2
    fail=1
  fi
done <<EOF
$declared_versions
EOF
for version in $(echo "$code_kinds" | awk '{print $3}' | sort -u); do
  if ! echo "$declared_versions" | grep -q "^$version "; then
    echo "check_format_spec: kind table uses version $version but wire.h declares no kWireVersion$version" >&2
    fail=1
  fi
done

# snapshot.h quotes kind numbers as "kServerState (3)"; each must match the
# wire.h constant of the same name (kFoo -> kKindFoo).
while read -r name number; do
  [ -z "$name" ] && continue
  expected=$(echo "$code_kinds" | sed -n "s/^kKind$name \([0-9]*\) [0-9]*$/\1/p")
  if [ -z "$expected" ]; then
    echo "check_format_spec: snapshot.h mentions k$name ($number) but wire.h has no kKind$name" >&2
    fail=1
  elif [ "$expected" != "$number" ]; then
    echo "check_format_spec: snapshot.h says k$name ($number), wire.h says kKind$name = $expected" >&2
    fail=1
  fi
done <<EOF
$(sed -n 's/.*[^A-Za-z]k\([A-Za-z]*\) (\([0-9][0-9]*\)).*/\1 \2/p' "$snapshot_h")
EOF

# FRS stream-framing constants: "kFrsVerdictAck 0" pairs from net/frame.h
# (the trailing "// FRS" comment is mandatory) vs the §11 table rows
# (| `kFrsVerdictAck` | 0 | ...).
frs_code=$(sed -n \
  's|^inline constexpr char \(kFrs[A-Za-z0-9]*\) = \([0-9]*\); *// FRS.*|\1 \2|p' \
  "$frame_h" | sort)
frs_spec=$(sed -n \
  's/^| *`\(kFrs[A-Za-z0-9]*\)` *| *\([0-9][0-9]*\) *|.*/\1 \2/p' \
  "$spec" | sort)

if [ -z "$frs_code" ]; then
  echo "check_format_spec: found no annotated kFrs constants in $frame_h" >&2
  echo "(every FRS byte value needs a trailing '// FRS' comment)" >&2
  exit 1
fi
if [ -z "$frs_spec" ]; then
  echo "check_format_spec: found no FRS table rows in $spec (section 11)" >&2
  exit 1
fi
if [ "$frs_code" != "$frs_spec" ]; then
  echo "check_format_spec: frame.h constants and docs/FORMATS.md section 11 disagree" >&2
  echo "--- frame.h (name value)" >&2
  echo "$frs_code" >&2
  echo "--- docs/FORMATS.md (name value)" >&2
  echo "$frs_spec" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_format_spec: OK ($(echo "$code_kinds" | wc -l | tr -d ' ') kinds, $(echo "$frs_code" | wc -l | tr -d ' ') FRS bytes in lockstep)"
