#!/usr/bin/env bash
# Cross-checks the FRW kind constants in the code against the normative
# table in docs/FORMATS.md, so the spec and the implementation cannot
# drift apart silently:
#
#   1. every `kKind* = N` constant in src/futurerand/core/wire.h must
#      appear in the FORMATS.md kind table with the same number, and vice
#      versa;
#   2. the kind numbers quoted in the core/snapshot.h header comment
#      ("kServerState (3)" etc.) must agree with wire.h.
#
# Run from anywhere; exits non-zero with a diff on any mismatch.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
wire_h="$repo_root/src/futurerand/core/wire.h"
snapshot_h="$repo_root/src/futurerand/core/snapshot.h"
spec="$repo_root/docs/FORMATS.md"
fail=0

for f in "$wire_h" "$snapshot_h" "$spec"; do
  if [ ! -f "$f" ]; then
    echo "check_format_spec: missing $f" >&2
    exit 1
  fi
done

# "kKindReport 2" lines from the header constants.
code_kinds=$(sed -n \
  's/^inline constexpr char \(kKind[A-Za-z]*\) = \([0-9]*\);.*/\1 \2/p' \
  "$wire_h" | sort)

# "kKindReport 2" lines from the spec's table (| 2 | `kKindReport` | ...).
spec_kinds=$(sed -n \
  's/^| *\([0-9][0-9]*\) *| *`\(kKind[A-Za-z]*\)`.*/\2 \1/p' \
  "$spec" | sort)

if [ -z "$code_kinds" ]; then
  echo "check_format_spec: found no kKind constants in $wire_h" >&2
  exit 1
fi
if [ -z "$spec_kinds" ]; then
  echo "check_format_spec: found no kind table rows in $spec" >&2
  exit 1
fi

if [ "$code_kinds" != "$spec_kinds" ]; then
  echo "check_format_spec: wire.h constants and docs/FORMATS.md table disagree" >&2
  echo "--- wire.h" >&2
  echo "$code_kinds" >&2
  echo "--- docs/FORMATS.md" >&2
  echo "$spec_kinds" >&2
  fail=1
fi

# snapshot.h quotes kind numbers as "kServerState (3)"; each must match the
# wire.h constant of the same name (kFoo -> kKindFoo).
while read -r name number; do
  [ -z "$name" ] && continue
  expected=$(echo "$code_kinds" | sed -n "s/^kKind$name \([0-9]*\)$/\1/p")
  if [ -z "$expected" ]; then
    echo "check_format_spec: snapshot.h mentions k$name ($number) but wire.h has no kKind$name" >&2
    fail=1
  elif [ "$expected" != "$number" ]; then
    echo "check_format_spec: snapshot.h says k$name ($number), wire.h says kKind$name = $expected" >&2
    fail=1
  fi
done <<EOF
$(sed -n 's/.*k\([A-Za-z]*\) (\([0-9][0-9]*\)).*/\1 \2/p' "$snapshot_h")
EOF

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_format_spec: OK ($(echo "$code_kinds" | wc -l | tr -d ' ') kinds in lockstep)"
