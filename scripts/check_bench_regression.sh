#!/usr/bin/env bash
# Per-stage throughput regression gate for the bench-smoke JSON line.
#
# Compares every *_records_per_sec stage field of a bench_throughput --json
# run against the committed baseline floors and fails if any stage dropped
# more than FR_BENCH_TOLERANCE (default 0.10 = 10%) below its floor. The
# baseline is deliberately conservative (well under a healthy run on the
# reference host) so ordinary scheduler noise never trips the gate — only a
# real hot-path regression does.
#
# Usage:
#   scripts/check_bench_regression.sh <bench_json> [baseline_json]
#   scripts/check_bench_regression.sh --update <bench_json> [baseline_json]
#
# <bench_json> is any file containing one bench_throughput JSON line (a raw
# --json capture or a CI log that embeds it). --update rewrites the baseline
# from the run at 50% of its measured rates — run it on the reference host
# after an intentional perf change, then commit the new baseline.
#
# Environment:
#   FR_BENCH_TOLERANCE  fractional slack below each floor (default 0.10)
set -euo pipefail

cd "$(dirname "$0")/.."

STAGES="tick_records_per_sec encode_records_per_sec ingest_records_per_sec query_records_per_sec"
TOLERANCE="${FR_BENCH_TOLERANCE:-0.10}"
DEFAULT_BASELINE="bench/baseline/bench_smoke_baseline.json"

update=0
if [[ "${1:-}" == "--update" ]]; then
  update=1
  shift
fi
bench_json="${1:?usage: check_bench_regression.sh [--update] <bench_json> [baseline_json]}"
baseline_json="${2:-$DEFAULT_BASELINE}"

# The capture may hold lines from several benches (the CI merges every
# bench-smoke JSON line into one file); gate the throughput stages against
# the throughput line specifically, never whichever bench happened to log
# first.
line="$(grep -o '{"bench":"throughput"[^}]*}' "$bench_json" | head -n 1 || true)"
if [[ -z "$line" ]]; then
  echo "check_bench_regression: no throughput bench JSON line found in $bench_json" >&2
  exit 2
fi

# Extracts a numeric field from a one-line JSON object.
field() {
  local value
  value="$(printf '%s\n' "$1" | grep -o "\"$2\":[^,}]*" | head -n 1 | cut -d: -f2)"
  if [[ -z "$value" ]]; then
    echo "check_bench_regression: field $2 missing from JSON line" >&2
    exit 2
  fi
  printf '%s\n' "$value"
}

if [[ "$update" == 1 ]]; then
  mkdir -p "$(dirname "$baseline_json")"
  {
    printf '{'
    sep=""
    for stage in $STAGES; do
      current="$(field "$line" "$stage")"
      floor="$(awk -v v="$current" 'BEGIN { printf "%.6g", v * 0.5 }')"
      printf '%s"%s":%s' "$sep" "$stage" "$floor"
      sep=","
    done
    printf '}\n'
  } > "$baseline_json"
  echo "check_bench_regression: baseline updated at $baseline_json (50% of measured rates)"
  exit 0
fi

if [[ ! -f "$baseline_json" ]]; then
  echo "check_bench_regression: baseline $baseline_json not found (run with --update to create it)" >&2
  exit 2
fi
baseline_line="$(cat "$baseline_json")"

kernel="$(printf '%s\n' "$line" | grep -o '"kernel":"[^"]*"' | cut -d'"' -f4 || true)"
echo "check_bench_regression: kernel=${kernel:-unknown} tolerance=$TOLERANCE"

fail=0
for stage in $STAGES; do
  current="$(field "$line" "$stage")"
  floor="$(field "$baseline_line" "$stage")"
  if awk -v c="$current" -v f="$floor" -v t="$TOLERANCE" \
      'BEGIN { exit !(c + 0 >= f * (1 - t)) }'; then
    echo "  OK   $stage: $current (floor $floor)"
  else
    echo "  FAIL $stage: $current < $floor * (1 - $TOLERANCE)"
    fail=1
  fi
done

if [[ "$fail" != 0 ]]; then
  echo "check_bench_regression: per-stage throughput regressed below the baseline" >&2
  exit 1
fi
echo "check_bench_regression: all stages within tolerance"

# Shootout cost ceilings: the cross-protocol bench reports per-report costs
# (lower is better), so its baseline holds CEILINGS rather than floors. The
# gate reads the first longitudinal (lgrr) shootout line — the newest
# protocol family is the one whose hot path must enter the perf trajectory
# — and fails if any cost rose above ceiling * (1 + tolerance). Skipped when
# the capture has no shootout line (throughput-only local runs stay valid).
SHOOTOUT_COSTS="bytes_per_report client_us_per_report server_us_per_report"
SHOOTOUT_BASELINE="bench/baseline/bench_shootout_baseline.json"
shootout_line="$(grep -o '{"bench":"shootout"[^}]*"protocol":"lgrr"[^}]*}' \
  "$bench_json" | head -n 1 || true)"
if [[ -n "$shootout_line" && -f "$SHOOTOUT_BASELINE" ]]; then
  shootout_baseline="$(cat "$SHOOTOUT_BASELINE")"
  for cost in $SHOOTOUT_COSTS; do
    current="$(field "$shootout_line" "$cost")"
    ceiling="$(field "$shootout_baseline" "$cost")"
    if awk -v c="$current" -v f="$ceiling" -v t="$TOLERANCE" \
        'BEGIN { exit !(c + 0 <= f * (1 + t)) }'; then
      echo "  OK   shootout $cost: $current (ceiling $ceiling)"
    else
      echo "  FAIL shootout $cost: $current > $ceiling * (1 + $TOLERANCE)"
      fail=1
    fi
  done
  if [[ "$fail" != 0 ]]; then
    echo "check_bench_regression: shootout per-report cost regressed above the ceiling" >&2
    exit 1
  fi
  echo "check_bench_regression: shootout costs within tolerance"
fi
