#!/usr/bin/env bash
# Fails on broken intra-repo markdown links: every [text](relative/path)
# in a tracked *.md file must point at a file or directory that exists
# (anchors and external URLs are skipped). Keeps README/docs pointers
# honest as files move.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0
checked=0

# All markdown files, excluding build trees, third-party checkouts, and
# the vendored paper/reference extracts (their links point into source
# material that was never part of this repo).
files=$(find "$repo_root" -name '*.md' \
  -not -path '*/build*/*' -not -path '*/_deps/*' -not -path '*/.git/*' \
  -not -name 'PAPER.md' -not -name 'PAPERS.md' -not -name 'SNIPPETS.md' \
  -not -name 'ISSUE.md')

for file in $files; do
  dir=$(dirname "$file")
  # Extract inline link targets: "](target)". One per line (while-read, so
  # targets containing spaces survive); tolerate several links per line.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;  # external or anchor
    esac
    path="${target%%#*}"    # strip an anchor suffix
    path="${path%% \"*}"    # strip a CommonMark link title: (path "title")
    path="${path%% }"       # and any trailing space left behind
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in ${file#"$repo_root"/}: $target" >&2
      fail=1
    fi
    checked=$((checked + 1))
  done << EOF
$(grep -o '](\([^)]*\))' "$file" 2>/dev/null | sed 's/^](//; s/)$//')
EOF
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "check_docs_links: OK ($checked intra-repo links resolve)"
