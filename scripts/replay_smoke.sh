#!/usr/bin/env bash
# Trace-replay smoke: record a run's t,truth,estimate,abs_error CSV with
# frsim --csv, then feed the same file back through --workload=replay. The
# replay decomposition reproduces the recorded ground truth exactly, so the
# second run must come up with a workload whose truth column round-trips —
# frsim exiting 0 on the replayed file is the contract under test (the
# exact-count round-trip itself is pinned by tests/sim/trace_test.cc).
#
# The binary comes from $FRSIM (set by the workload_smoke.replay CTest
# entry) or defaults to the build tree.
set -euo pipefail

FRSIM="${FRSIM:-build/tools/frsim}"

workdir="$(mktemp -d)"
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

csv="$workdir/recorded.csv"

"$FRSIM" --workload=shock --shock-fraction=0.5 --n=1500 --d=32 --k=4 \
  --eps=1.0 --reps=1 --seed=11 --csv="$csv" >"$workdir/record.out"
grep -q "trace written" "$workdir/record.out"

# 1 header row + d data rows.
[[ "$(wc -l <"$csv")" -eq 33 ]]

"$FRSIM" --workload=replay --replay="$csv" --n=1500 --d=32 --k=4 \
  --eps=1.0 --reps=1 --seed=12 >"$workdir/replay.out"
grep -q "future_rand over replay" "$workdir/replay.out"
echo "replay smoke OK"
