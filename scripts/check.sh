#!/usr/bin/env bash
# Tier-1 verify loop: configure, build everything, run the full test suite.
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

bash scripts/check_docs_links.sh
bash scripts/check_format_spec.sh
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
