#!/usr/bin/env bash
# Tier-1 verify loop: configure, build everything, run the full test suite.
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

bash scripts/check_docs_links.sh
bash scripts/check_format_spec.sh
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Per-stage throughput gate: run the bench-smoke shape and compare every
# stage's records/sec against the committed baseline floors.
"$BUILD_DIR"/bench/bench_throughput --n=400 --d=64 --k=2 --shards=3 \
  --threads=2 --protocol=future_rand --dedup --checkpoint-mode=delta \
  --wire-version=2 --corrupt-rate=0.2 --json \
  > "$BUILD_DIR/bench_smoke.json"
bash scripts/check_bench_regression.sh "$BUILD_DIR/bench_smoke.json"

# Same gate for the sketch store: the hash-bucketed hot path has its own
# floors (bench/baseline/bench_smoke_sketch_baseline.json).
"$BUILD_DIR"/bench/bench_throughput --n=400 --d=64 --k=2 --shards=3 \
  --threads=2 --protocol=future_rand --dedup --checkpoint-mode=delta \
  --wire-version=2 --corrupt-rate=0.2 \
  --store=sketch --sketch-rows=3 --sketch-width=16 --json \
  > "$BUILD_DIR/bench_smoke_sketch.json"
bash scripts/check_bench_regression.sh "$BUILD_DIR/bench_smoke_sketch.json" \
  bench/baseline/bench_smoke_sketch_baseline.json
