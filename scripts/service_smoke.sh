#!/usr/bin/env bash
# End-to-end smoke of the ingestion service: frserve on a Unix domain
# socket, frload pushing a fleet through a faulty channel (bit flips,
# drops, duplicates) with NACK retransmission, then --verify: the server's
# shutdown checkpoint must restore to estimates bitwise-identical to the
# equivalent in-process run, with equal delivery counters.
#
# Binaries come from $FRSERVE / $FRLOAD (set by the smoke.service CTest
# entry) or default to the build tree.
set -euo pipefail

FRSERVE="${FRSERVE:-build/tools/frserve}"
FRLOAD="${FRLOAD:-build/tools/frload}"

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

sock="$workdir/fr.sock"
ckpt="$workdir/fr.ckpt"

"$FRSERVE" --uds="$sock" --d=32 --k=2 --eps=1.0 --workers=2 --dedup \
  --checkpoint="$ckpt" --checkpoint-interval-ms=50 \
  --checkpoint-mode=delta --checkpoint-compact-every=4 \
  --json >"$workdir/frserve.out" 2>&1 &
server_pid=$!

# Startup barrier: frserve prints its ready line once listening.
for _ in $(seq 1 100); do
  grep -q "frserve ready" "$workdir/frserve.out" 2>/dev/null && break
  if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "frserve died during startup:" >&2
    cat "$workdir/frserve.out" >&2
    exit 1
  fi
  sleep 0.1
done
grep -q "frserve ready" "$workdir/frserve.out"

"$FRLOAD" --uds="$sock" --connections=3 --n=2000 --d=32 --k=2 --eps=1.0 \
  --seed=7 --workload-seed=3 \
  --corrupt-rate=0.05 --drop-rate=0.02 --dup-rate=0.01 --dedup \
  --retransmit-budget=16 \
  --checkpoint="$ckpt" --verify --json | tee "$workdir/frload.out"

# frload sent kShutdown; the server drains, checkpoints, acks, and exits 0.
wait "$server_pid"
server_pid=""
cat "$workdir/frserve.out"

# The bench JSON is the artifact CI uploads; verify must have passed.
grep -q '"bench":"frserve"' "$workdir/frserve.out"
grep -q '"verify":1' "$workdir/frload.out"
echo "service smoke OK"
